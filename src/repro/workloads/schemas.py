"""Synthetic database schemas and data generators.

Three domains are provided:

* **limnology** — the paper's running example (water salinity / temperature /
  city locations around Seattle lakes),
* **sky survey** — an SDSS-like photometric/spectroscopic catalogue,
* **web analytics** — an industrial clickstream/search-log schema.

Data generation is deterministic for a given seed and scales linearly with the
``scale`` parameter so that the benchmark harness can sweep database sizes.
"""

from __future__ import annotations

import random

from repro.storage.database import Database
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.types import DataType

#: Lakes used by the limnology generator (the paper's example mentions Lake
#: Washington and Lake Union explicitly).
LAKE_NAMES = [
    "Lake Washington",
    "Lake Union",
    "Lake Sammamish",
    "Green Lake",
    "Lake Michigan",
    "Lake Superior",
    "Lake Chelan",
    "Crater Lake",
]

CITY_NAMES = [
    ("Seattle", "WA"),
    ("Bellevue", "WA"),
    ("Kirkland", "WA"),
    ("Tacoma", "WA"),
    ("Spokane", "WA"),
    ("Portland", "OR"),
    ("Chicago", "MI"),
    ("Detroit", "MI"),
    ("Ann Arbor", "MI"),
    ("Madison", "WI"),
]


def _column(name: str, data_type: DataType, **kwargs) -> ColumnSchema:
    return ColumnSchema(name=name, data_type=data_type, **kwargs)


# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------


def limnology_schema() -> list[TableSchema]:
    """The water-science schema used in the paper's examples."""
    return [
        TableSchema(
            name="Lakes",
            columns=[
                _column("lake_id", DataType.INTEGER, primary_key=True),
                _column("name", DataType.TEXT),
                _column("state", DataType.TEXT),
                _column("area_km2", DataType.FLOAT),
                _column("max_depth_m", DataType.FLOAT),
            ],
        ),
        TableSchema(
            name="WaterSalinity",
            columns=[
                _column("reading_id", DataType.INTEGER, primary_key=True),
                _column("lake_id", DataType.INTEGER),
                _column("loc_x", DataType.FLOAT),
                _column("loc_y", DataType.FLOAT),
                _column("salinity", DataType.FLOAT),
                _column("depth", DataType.FLOAT),
                _column("month", DataType.INTEGER),
            ],
        ),
        TableSchema(
            name="WaterTemp",
            columns=[
                _column("reading_id", DataType.INTEGER, primary_key=True),
                _column("lake_id", DataType.INTEGER),
                _column("loc_x", DataType.FLOAT),
                _column("loc_y", DataType.FLOAT),
                _column("temp", DataType.FLOAT),
                _column("depth", DataType.FLOAT),
                _column("month", DataType.INTEGER),
            ],
        ),
        TableSchema(
            name="CityLocations",
            columns=[
                _column("city_id", DataType.INTEGER, primary_key=True),
                _column("city", DataType.TEXT),
                _column("state", DataType.TEXT),
                _column("loc_x", DataType.FLOAT),
                _column("loc_y", DataType.FLOAT),
                _column("population", DataType.INTEGER),
            ],
        ),
        TableSchema(
            name="Sensors",
            columns=[
                _column("sensor_id", DataType.INTEGER, primary_key=True),
                _column("lake_id", DataType.INTEGER),
                _column("sensor_type", DataType.TEXT),
                _column("installed_year", DataType.INTEGER),
            ],
        ),
        TableSchema(
            name="SensorReadings",
            columns=[
                _column("reading_id", DataType.INTEGER, primary_key=True),
                _column("sensor_id", DataType.INTEGER),
                _column("month", DataType.INTEGER),
                _column("value", DataType.FLOAT),
            ],
        ),
    ]


def sky_survey_schema() -> list[TableSchema]:
    """An SDSS-like sky-survey schema."""
    return [
        TableSchema(
            name="PhotoObj",
            columns=[
                _column("objid", DataType.INTEGER, primary_key=True),
                _column("ra", DataType.FLOAT),
                _column("dec", DataType.FLOAT),
                _column("obj_type", DataType.TEXT),
                _column("mag_r", DataType.FLOAT),
                _column("mag_g", DataType.FLOAT),
                _column("run_id", DataType.INTEGER),
            ],
        ),
        TableSchema(
            name="SpecObj",
            columns=[
                _column("specobjid", DataType.INTEGER, primary_key=True),
                _column("objid", DataType.INTEGER),
                _column("redshift", DataType.FLOAT),
                _column("spec_class", DataType.TEXT),
            ],
        ),
        TableSchema(
            name="Neighbors",
            columns=[
                _column("objid", DataType.INTEGER),
                _column("neighbor_objid", DataType.INTEGER),
                _column("distance_arcsec", DataType.FLOAT),
            ],
        ),
        TableSchema(
            name="Runs",
            columns=[
                _column("run_id", DataType.INTEGER, primary_key=True),
                _column("mjd", DataType.INTEGER),
                _column("field", DataType.INTEGER),
                _column("quality", DataType.TEXT),
            ],
        ),
    ]


def web_analytics_schema() -> list[TableSchema]:
    """An industrial web-analytics schema (clickstream, search log, orders)."""
    return [
        TableSchema(
            name="Users",
            columns=[
                _column("user_id", DataType.INTEGER, primary_key=True),
                _column("country", DataType.TEXT),
                _column("signup_month", DataType.INTEGER),
                _column("plan", DataType.TEXT),
            ],
        ),
        TableSchema(
            name="PageViews",
            columns=[
                _column("view_id", DataType.INTEGER, primary_key=True),
                _column("user_id", DataType.INTEGER),
                _column("url", DataType.TEXT),
                _column("minute", DataType.INTEGER),
                _column("duration_s", DataType.FLOAT),
            ],
        ),
        TableSchema(
            name="Searches",
            columns=[
                _column("search_id", DataType.INTEGER, primary_key=True),
                _column("user_id", DataType.INTEGER),
                _column("terms", DataType.TEXT),
                _column("minute", DataType.INTEGER),
                _column("clicks", DataType.INTEGER),
            ],
        ),
        TableSchema(
            name="Orders",
            columns=[
                _column("order_id", DataType.INTEGER, primary_key=True),
                _column("user_id", DataType.INTEGER),
                _column("amount", DataType.FLOAT),
                _column("minute", DataType.INTEGER),
            ],
        ),
    ]


# ---------------------------------------------------------------------------
# Data generation
# ---------------------------------------------------------------------------


def populate_limnology(db: Database, scale: int = 1, seed: int = 7) -> None:
    """Fill the limnology tables with ``scale``-proportional synthetic data.

    Lake Washington (lake_id 1) and Lake Union (lake_id 2) are seeded so that
    *only* readings with ``temp < 18`` exist for Lake Washington while Lake
    Union has readings above 18 as well — this is the property exploited by
    the query-by-data experiment (C3), mirroring the paper's example that
    "all matching queries specify 'temp < 18'".
    """
    rng = random.Random(seed)
    lakes = []
    for lake_id, name in enumerate(LAKE_NAMES, start=1):
        state = "WA" if "Lake M" not in name and "Superior" not in name and "Crater" not in name else (
            "MI" if "Michigan" in name or "Superior" in name else "OR"
        )
        lakes.append(
            {
                "lake_id": lake_id,
                "name": name,
                "state": state,
                "area_km2": round(rng.uniform(2.0, 500.0), 2),
                "max_depth_m": round(rng.uniform(10.0, 300.0), 1),
            }
        )
    db.insert_rows("Lakes", lakes)

    cities = [
        {
            "city_id": index,
            "city": city,
            "state": state,
            "loc_x": round(rng.uniform(-123.0, -121.0), 4),
            "loc_y": round(rng.uniform(46.5, 48.5), 4),
            "population": rng.randint(10_000, 800_000),
        }
        for index, (city, state) in enumerate(CITY_NAMES, start=1)
    ]
    db.insert_rows("CityLocations", cities)

    readings_per_lake = 40 * scale
    temp_rows = []
    salinity_rows = []
    reading_id = 0
    for lake in lakes:
        for _ in range(readings_per_lake):
            reading_id += 1
            loc_x = round(rng.uniform(-123.0, -121.0), 4)
            loc_y = round(rng.uniform(46.5, 48.5), 4)
            month = rng.randint(1, 12)
            depth = round(rng.uniform(0.5, 40.0), 1)
            if lake["lake_id"] == 1:
                # Lake Washington: strictly cool readings (temp < 18).
                temp = round(rng.uniform(4.0, 17.5), 2)
            elif lake["lake_id"] == 2:
                # Lake Union: strictly warm readings (temp >= 18), so that a
                # 'temp < 18' selection is exactly what distinguishes the two
                # lakes — the paper's query-by-data example (Section 2.2).
                temp = round(rng.uniform(18.5, 26.0), 2)
            else:
                temp = round(rng.uniform(2.0, 24.0), 2)
            temp_rows.append(
                {
                    "reading_id": reading_id,
                    "lake_id": lake["lake_id"],
                    "loc_x": loc_x,
                    "loc_y": loc_y,
                    "temp": temp,
                    "depth": depth,
                    "month": month,
                }
            )
            salinity_rows.append(
                {
                    "reading_id": reading_id,
                    "lake_id": lake["lake_id"],
                    "loc_x": loc_x,
                    "loc_y": loc_y,
                    "salinity": round(rng.uniform(0.01, 0.6), 3),
                    "depth": depth,
                    "month": month,
                }
            )
    db.insert_rows("WaterTemp", temp_rows)
    db.insert_rows("WaterSalinity", salinity_rows)

    sensors = []
    sensor_id = 0
    for lake in lakes:
        for sensor_type in ("temp", "salinity", "ph"):
            sensor_id += 1
            sensors.append(
                {
                    "sensor_id": sensor_id,
                    "lake_id": lake["lake_id"],
                    "sensor_type": sensor_type,
                    "installed_year": rng.randint(1998, 2008),
                }
            )
    db.insert_rows("Sensors", sensors)

    sensor_readings = []
    reading_id = 0
    for sensor in sensors:
        for month in range(1, 1 + min(12, 4 * scale)):
            reading_id += 1
            sensor_readings.append(
                {
                    "reading_id": reading_id,
                    "sensor_id": sensor["sensor_id"],
                    "month": month,
                    "value": round(rng.uniform(0.0, 30.0), 3),
                }
            )
    db.insert_rows("SensorReadings", sensor_readings)


def populate_sky_survey(db: Database, scale: int = 1, seed: int = 11) -> None:
    """Fill the sky-survey tables with synthetic objects and spectra."""
    rng = random.Random(seed)
    num_objects = 200 * scale
    runs = [
        {"run_id": run_id, "mjd": 50_000 + run_id, "field": rng.randint(1, 99), "quality": rng.choice(["GOOD", "OK", "BAD"])}
        for run_id in range(1, 11)
    ]
    db.insert_rows("Runs", runs)
    objects = []
    for objid in range(1, num_objects + 1):
        objects.append(
            {
                "objid": objid,
                "ra": round(rng.uniform(0.0, 360.0), 5),
                "dec": round(rng.uniform(-90.0, 90.0), 5),
                "obj_type": rng.choice(["STAR", "GALAXY", "QSO"]),
                "mag_r": round(rng.uniform(12.0, 24.0), 3),
                "mag_g": round(rng.uniform(12.0, 25.0), 3),
                "run_id": rng.randint(1, 10),
            }
        )
    db.insert_rows("PhotoObj", objects)
    spectra = []
    for specobjid, obj in enumerate(rng.sample(objects, max(1, num_objects // 3)), start=1):
        spectra.append(
            {
                "specobjid": specobjid,
                "objid": obj["objid"],
                "redshift": round(rng.uniform(0.0, 3.5), 4),
                "spec_class": obj["obj_type"],
            }
        )
    db.insert_rows("SpecObj", spectra)
    neighbors = []
    for obj in objects[:: max(1, 10 // scale)]:
        other = rng.choice(objects)
        if other["objid"] != obj["objid"]:
            neighbors.append(
                {
                    "objid": obj["objid"],
                    "neighbor_objid": other["objid"],
                    "distance_arcsec": round(rng.uniform(0.1, 30.0), 3),
                }
            )
    db.insert_rows("Neighbors", neighbors)


def populate_web_analytics(db: Database, scale: int = 1, seed: int = 13) -> None:
    """Fill the web-analytics tables with synthetic users and events."""
    rng = random.Random(seed)
    num_users = 50 * scale
    users = [
        {
            "user_id": user_id,
            "country": rng.choice(["US", "DE", "JP", "BR", "IN"]),
            "signup_month": rng.randint(1, 24),
            "plan": rng.choice(["free", "pro", "enterprise"]),
        }
        for user_id in range(1, num_users + 1)
    ]
    db.insert_rows("Users", users)
    page_views = []
    searches = []
    orders = []
    view_id = search_id = order_id = 0
    urls = ["/home", "/docs", "/pricing", "/blog", "/download", "/search"]
    for user in users:
        for _ in range(rng.randint(3, 12)):
            view_id += 1
            page_views.append(
                {
                    "view_id": view_id,
                    "user_id": user["user_id"],
                    "url": rng.choice(urls),
                    "minute": rng.randint(0, 60 * 24 * 7),
                    "duration_s": round(rng.expovariate(1 / 45.0), 1),
                }
            )
        for _ in range(rng.randint(0, 4)):
            search_id += 1
            searches.append(
                {
                    "search_id": search_id,
                    "user_id": user["user_id"],
                    "terms": rng.choice(["install", "pricing", "api error", "export csv"]),
                    "minute": rng.randint(0, 60 * 24 * 7),
                    "clicks": rng.randint(0, 5),
                }
            )
        if rng.random() < 0.3:
            order_id += 1
            orders.append(
                {
                    "order_id": order_id,
                    "user_id": user["user_id"],
                    "amount": round(rng.uniform(5.0, 500.0), 2),
                    "minute": rng.randint(0, 60 * 24 * 7),
                }
            )
    db.insert_rows("PageViews", page_views)
    db.insert_rows("Searches", searches)
    db.insert_rows("Orders", orders)


_DOMAINS = {
    "limnology": (limnology_schema, populate_limnology),
    "sky_survey": (sky_survey_schema, populate_sky_survey),
    "web_analytics": (web_analytics_schema, populate_web_analytics),
}


def build_database(
    domain: str = "limnology",
    scale: int = 1,
    seed: int = 7,
    clock=None,
    exec_settings=None,
) -> Database:
    """Create a :class:`Database` with the named domain's schema and data.

    ``domain`` is one of ``limnology``, ``sky_survey``, ``web_analytics``;
    ``exec_settings`` is an optional
    :class:`~repro.storage.exec_settings.ExecutionSettings` for the engine's
    batch-size / parallel-scan knobs (the CQMS's ``exec_*`` config fields only
    tune its own meta-database, never a user DBMS built here).
    """
    if domain not in _DOMAINS:
        raise ValueError(f"unknown workload domain {domain!r}; choose from {sorted(_DOMAINS)}")
    schema_factory, populate = _DOMAINS[domain]
    db = Database(name=domain, clock=clock, exec_settings=exec_settings)
    for table_schema in schema_factory():
        db.create_table(table_schema)
    populate(db, scale=scale, seed=seed)
    return db
