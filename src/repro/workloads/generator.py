"""Multi-user query-log generation with a session behaviour model.

The CQMS features the paper proposes are all defined over properties of real
exploratory query logs:

* queries arrive in *sessions* — bursts of similar queries pursuing one
  information goal, separated by long idle gaps (Figure 2),
* consecutive queries in a session differ by small edits — adding a relation,
  trying different constants, adding predicates (the exact edge labels of
  Figure 2),
* users in the same group share information goals, so the log contains many
  near-duplicate analyses (the premise of recommendation, Section 1),
* table co-occurrence is context dependent — the paper's own example: the most
  popular table overall is ``CityLocations``, but *given* ``WaterSalinity``
  the most popular companion is ``WaterTemp`` (Section 2.3),
* some queries carry user annotations (Section 2.1).

The :class:`QueryLogGenerator` produces a log with exactly these properties,
deterministically for a given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import WorkloadError


# ---------------------------------------------------------------------------
# Goal templates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PredicateSlot:
    """A predicate the analyst experiments with during a session.

    ``tried_values`` are attempted in order (the Figure 2 session tries
    ``temp < 22``, ``< 10`` and settles on ``< 18``); the last value is the
    one the final query keeps.
    """

    column: str                     # e.g. "T.temp"
    op: str                         # e.g. "<"
    tried_values: tuple[object, ...]

    @property
    def final_value(self) -> object:
        return self.tried_values[-1]


@dataclass(frozen=True)
class Goal:
    """An information goal: the full query a session converges to.

    ``tables`` is an ordered tuple of ``(table, alias)``; tables are added to
    the FROM clause in this order during the session.  ``join_conditions``
    list the equi-join predicates needed once both sides are present.
    ``projections`` are the columns of the final SELECT list.
    """

    name: str
    tables: tuple[tuple[str, str], ...]
    join_conditions: tuple[tuple[frozenset[str], str], ...] = ()
    projections: tuple[str, ...] = ()
    predicate_slots: tuple[PredicateSlot, ...] = ()
    extra_predicates: tuple[str, ...] = ()
    group_by: tuple[str, ...] = ()
    aggregate: str | None = None
    order_by: str | None = None
    annotation: str | None = None

    def final_sql(self) -> str:
        """The SQL of the fully developed goal query."""
        state = _SessionState.full(self)
        return state.render()


def _slot(column: str, op: str, *values) -> PredicateSlot:
    return PredicateSlot(column=column, op=op, tried_values=tuple(values))


#: Goal templates per workload domain.  The limnology goals follow the paper's
#: examples closely; sky-survey and web-analytics goals model typical
#: exploratory analyses in those domains.
GOAL_LIBRARY: dict[str, list[Goal]] = {
    "limnology": [
        Goal(
            name="salinity_temp_correlation",
            tables=(("WaterSalinity", "S"), ("WaterTemp", "T")),
            join_conditions=(
                (frozenset({"S", "T"}), "S.loc_x = T.loc_x"),
                (frozenset({"S", "T"}), "S.loc_y = T.loc_y"),
            ),
            projections=("S.salinity", "T.temp", "T.depth"),
            predicate_slots=(_slot("T.temp", "<", 22, 10, 18),),
            annotation="correlate water salinity with water temperature",
        ),
        Goal(
            name="seattle_lakes_panorama",
            tables=(("WaterSalinity", "S"), ("WaterTemp", "T"), ("CityLocations", "L")),
            join_conditions=(
                (frozenset({"S", "T"}), "S.loc_x = T.loc_x"),
                (frozenset({"S", "T"}), "S.loc_y = T.loc_y"),
                (frozenset({"T", "L"}), "L.loc_x = T.loc_x"),
            ),
            projections=("L.city", "T.temp", "S.salinity"),
            predicate_slots=(
                _slot("T.temp", "<", 22, 18),
                _slot("L.state", "=", "'WA'"),
            ),
            annotation="find temp and salinity of seattle lakes",
        ),
        Goal(
            name="city_population_ranking",
            tables=(("CityLocations", "C"),),
            projections=("C.city", "C.state", "C.population"),
            predicate_slots=(_slot("C.population", ">", 10000, 50000, 100000),),
            order_by="C.population DESC",
        ),
        Goal(
            name="cities_by_state",
            tables=(("CityLocations", "C"),),
            projections=("C.state", "C.city"),
            predicate_slots=(_slot("C.state", "=", "'MI'", "'WA'"),),
        ),
        Goal(
            name="warm_lakes",
            tables=(("Lakes", "K"), ("WaterTemp", "T")),
            join_conditions=((frozenset({"K", "T"}), "K.lake_id = T.lake_id"),),
            projections=("K.name", "T.temp"),
            predicate_slots=(_slot("T.temp", "<", 22, 20, 18),),
            annotation="which lakes stay cool in summer",
        ),
        Goal(
            name="lake_depth_survey",
            tables=(("Lakes", "K"),),
            projections=("K.name", "K.max_depth_m", "K.area_km2"),
            predicate_slots=(_slot("K.max_depth_m", ">", 50, 100),),
        ),
        Goal(
            name="monthly_temperature_profile",
            tables=(("WaterTemp", "T"),),
            projections=("T.month",),
            predicate_slots=(_slot("T.depth", "<", 20, 10),),
            group_by=("T.month",),
            aggregate="AVG(T.temp)",
            order_by="T.month",
            annotation="seasonal temperature profile",
        ),
        Goal(
            name="salinity_depth_profile",
            tables=(("WaterSalinity", "S"),),
            projections=("S.depth", "S.salinity"),
            predicate_slots=(_slot("S.salinity", ">", 0.1, 0.3),),
            order_by="S.depth",
        ),
        Goal(
            name="sensor_health_check",
            tables=(("Sensors", "N"), ("SensorReadings", "R")),
            join_conditions=((frozenset({"N", "R"}), "N.sensor_id = R.sensor_id"),),
            projections=("N.sensor_type",),
            predicate_slots=(_slot("N.installed_year", "<", 2005, 2002),),
            group_by=("N.sensor_type",),
            aggregate="COUNT(*)",
        ),
        Goal(
            name="city_nearest_water",
            tables=(("CityLocations", "C"), ("WaterTemp", "T")),
            join_conditions=((frozenset({"C", "T"}), "C.loc_x = T.loc_x"),),
            projections=("C.city", "T.temp"),
            predicate_slots=(_slot("C.population", ">", 100000, 200000),),
        ),
    ],
    "sky_survey": [
        Goal(
            name="bright_galaxies",
            tables=(("PhotoObj", "P"),),
            projections=("P.objid", "P.ra", "P.dec", "P.mag_r"),
            predicate_slots=(
                _slot("P.mag_r", "<", 20, 18, 17),
                _slot("P.obj_type", "=", "'GALAXY'"),
            ),
            order_by="P.mag_r",
        ),
        Goal(
            name="quasar_redshift_distribution",
            tables=(("PhotoObj", "P"), ("SpecObj", "S")),
            join_conditions=((frozenset({"P", "S"}), "P.objid = S.objid"),),
            projections=("S.redshift",),
            predicate_slots=(
                _slot("S.spec_class", "=", "'QSO'"),
                _slot("S.redshift", ">", 1.0, 2.0),
            ),
            group_by=("P.run_id",),
            aggregate="COUNT(*)",
            annotation="redshift distribution of quasars by run",
        ),
        Goal(
            name="close_pairs",
            tables=(("PhotoObj", "P"), ("Neighbors", "N")),
            join_conditions=((frozenset({"P", "N"}), "P.objid = N.objid"),),
            projections=("P.objid", "N.neighbor_objid", "N.distance_arcsec"),
            predicate_slots=(_slot("N.distance_arcsec", "<", 10, 5, 2),),
            annotation="close object pairs for lensing candidates",
        ),
        Goal(
            name="good_runs",
            tables=(("Runs", "R"),),
            projections=("R.run_id", "R.mjd", "R.field"),
            predicate_slots=(_slot("R.quality", "=", "'GOOD'"),),
        ),
        Goal(
            name="star_colors",
            tables=(("PhotoObj", "P"),),
            projections=("P.objid", "P.mag_g", "P.mag_r"),
            predicate_slots=(
                _slot("P.obj_type", "=", "'STAR'"),
                _slot("P.mag_g", "<", 22, 20),
            ),
        ),
    ],
    "web_analytics": [
        Goal(
            name="engagement_by_country",
            tables=(("PageViews", "V"), ("Users", "U")),
            join_conditions=((frozenset({"V", "U"}), "V.user_id = U.user_id"),),
            projections=("U.country",),
            predicate_slots=(_slot("V.duration_s", ">", 30, 60),),
            group_by=("U.country",),
            aggregate="COUNT(*)",
            annotation="page engagement by country",
        ),
        Goal(
            name="search_effectiveness",
            tables=(("Searches", "S"),),
            projections=("S.terms", "S.clicks"),
            predicate_slots=(_slot("S.clicks", ">", 0, 2),),
            order_by="S.clicks DESC",
        ),
        Goal(
            name="revenue_by_plan",
            tables=(("Orders", "O"), ("Users", "U")),
            join_conditions=((frozenset({"O", "U"}), "O.user_id = U.user_id"),),
            projections=("U.plan",),
            predicate_slots=(_slot("O.amount", ">", 10, 50, 100),),
            group_by=("U.plan",),
            aggregate="SUM(O.amount)",
        ),
        Goal(
            name="heavy_readers",
            tables=(("PageViews", "V"),),
            projections=("V.user_id",),
            predicate_slots=(_slot("V.url", "=", "'/docs'", "'/blog'"),),
            group_by=("V.user_id",),
            aggregate="COUNT(*)",
        ),
    ],
}


# ---------------------------------------------------------------------------
# Workload configuration and output records
# ---------------------------------------------------------------------------


@dataclass
class WorkloadConfig:
    """Parameters of a generated workload."""

    domain: str = "limnology"
    num_users: int = 12
    num_groups: int = 3
    num_sessions: int = 120
    seed: int = 42
    start_time: float = 0.0
    intra_session_gap: tuple[float, float] = (20.0, 120.0)
    inter_session_gap: tuple[float, float] = (1800.0, 14400.0)
    annotation_probability: float = 0.3
    repeat_popular_probability: float = 0.25
    typo_probability: float = 0.0

    def validate(self) -> None:
        if self.domain not in GOAL_LIBRARY:
            raise WorkloadError(
                f"unknown domain {self.domain!r}; choose from {sorted(GOAL_LIBRARY)}"
            )
        if self.num_users < 1 or self.num_sessions < 1:
            raise WorkloadError("num_users and num_sessions must be positive")
        if self.num_groups < 1 or self.num_groups > self.num_users:
            raise WorkloadError("num_groups must be between 1 and num_users")


@dataclass
class WorkloadQuery:
    """One logged query event produced by the generator."""

    user: str
    group: str
    timestamp: float
    sql: str
    goal: str
    session_ordinal: int
    step: int
    is_final: bool
    annotation: str | None = None


# ---------------------------------------------------------------------------
# Session state machine
# ---------------------------------------------------------------------------


@dataclass
class _SessionState:
    """The analyst's evolving draft of the goal query."""

    goal: Goal
    included_aliases: list[str]
    slot_positions: dict[int, int]          # slot index -> index into tried_values
    active_slots: list[int]
    explicit_projection: bool = False
    grouping: bool = False
    ordering: bool = False

    @classmethod
    def initial(cls, goal: Goal, rng: random.Random) -> "_SessionState":
        first_alias = goal.tables[0][1]
        active = [0] if goal.predicate_slots else []
        return cls(
            goal=goal,
            included_aliases=[first_alias],
            slot_positions={0: 0} if goal.predicate_slots else {},
            active_slots=active,
            explicit_projection=False,
            grouping=False,
            ordering=False,
        )

    @classmethod
    def full(cls, goal: Goal) -> "_SessionState":
        return cls(
            goal=goal,
            included_aliases=[alias for _, alias in goal.tables],
            slot_positions={
                index: len(slot.tried_values) - 1
                for index, slot in enumerate(goal.predicate_slots)
            },
            active_slots=list(range(len(goal.predicate_slots))),
            explicit_projection=bool(goal.projections),
            grouping=bool(goal.group_by),
            ordering=bool(goal.order_by),
        )

    # -- evolution steps ----------------------------------------------------

    def possible_steps(self) -> list[str]:
        steps: list[str] = []
        if len(self.included_aliases) < len(self.goal.tables):
            steps.append("add_table")
        for index in self.active_slots:
            slot = self.goal.predicate_slots[index]
            if self.slot_positions[index] < len(slot.tried_values) - 1:
                steps.append("tweak_constant")
                break
        if len(self.active_slots) < len(self.goal.predicate_slots):
            steps.append("add_predicate")
        if self.goal.projections and not self.explicit_projection:
            steps.append("refine_projection")
        if self.goal.group_by and not self.grouping:
            steps.append("add_grouping")
        if self.goal.order_by and not self.ordering:
            steps.append("add_ordering")
        return steps

    def apply(self, step: str, rng: random.Random) -> None:
        if step == "add_table":
            next_alias = self.goal.tables[len(self.included_aliases)][1]
            self.included_aliases.append(next_alias)
        elif step == "tweak_constant":
            candidates = [
                index
                for index in self.active_slots
                if self.slot_positions[index]
                < len(self.goal.predicate_slots[index].tried_values) - 1
            ]
            chosen = rng.choice(candidates)
            self.slot_positions[chosen] += 1
        elif step == "add_predicate":
            next_index = len(self.active_slots)
            self.active_slots.append(next_index)
            self.slot_positions[next_index] = 0
        elif step == "refine_projection":
            self.explicit_projection = True
        elif step == "add_grouping":
            self.grouping = True
            self.explicit_projection = True
        elif step == "add_ordering":
            self.ordering = True
        else:
            raise WorkloadError(f"unknown session step {step!r}")

    @property
    def is_complete(self) -> bool:
        return not self.possible_steps()

    # -- rendering ------------------------------------------------------------

    def render(self) -> str:
        goal = self.goal
        included = set(self.included_aliases)
        from_parts = [
            f"{table} {alias}" for table, alias in goal.tables if alias in included
        ]
        predicates: list[str] = []
        for left_aliases, condition in goal.join_conditions:
            if left_aliases <= included:
                predicates.append(condition)
        for index in self.active_slots:
            slot = goal.predicate_slots[index]
            alias = slot.column.split(".")[0]
            if alias not in included:
                continue
            value = slot.tried_values[self.slot_positions[index]]
            predicates.append(f"{slot.column} {slot.op} {value}")
        for predicate in goal.extra_predicates:
            alias = predicate.split(".")[0]
            if alias in included:
                predicates.append(predicate)

        if self.grouping and goal.group_by:
            group_columns = [col for col in goal.group_by if col.split(".")[0] in included]
            select_parts = list(group_columns)
            if goal.aggregate:
                select_parts.append(goal.aggregate)
            select_clause = ", ".join(select_parts) if select_parts else "*"
        elif self.explicit_projection and goal.projections:
            visible = [col for col in goal.projections if col.split(".")[0] in included]
            select_clause = ", ".join(visible) if visible else "*"
        else:
            select_clause = "*"

        sql = f"SELECT {select_clause} FROM {', '.join(from_parts)}"
        if predicates:
            sql += " WHERE " + " AND ".join(predicates)
        if self.grouping and goal.group_by:
            group_columns = [col for col in goal.group_by if col.split(".")[0] in included]
            if group_columns:
                sql += " GROUP BY " + ", ".join(group_columns)
        if self.ordering and goal.order_by:
            if goal.order_by.split(".")[0].split(" ")[0] in included or "." not in goal.order_by:
                sql += f" ORDER BY {goal.order_by}"
        return sql


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


class QueryLogGenerator:
    """Generates a multi-user query log according to a :class:`WorkloadConfig`."""

    def __init__(self, config: WorkloadConfig | None = None, **overrides):
        if config is None:
            config = WorkloadConfig(**overrides)
        elif overrides:
            raise WorkloadError("pass either a WorkloadConfig or keyword overrides, not both")
        config.validate()
        self.config = config
        self._rng = random.Random(config.seed)

    # -- public API -----------------------------------------------------------

    def generate(self) -> list[WorkloadQuery]:
        """Produce the full log, ordered by timestamp."""
        config = self.config
        goals = GOAL_LIBRARY[config.domain]
        users = [f"user{index:02d}" for index in range(1, config.num_users + 1)]
        groups = {
            user: f"group{(index % config.num_groups) + 1}"
            for index, user in enumerate(users)
        }
        group_goals = self._assign_group_goals(goals, config.num_groups)

        # Each user has an independent timeline; sessions are interleaved by
        # sorting on timestamps at the end.
        user_time = {
            user: config.start_time + self._rng.uniform(0.0, 600.0) for user in users
        }
        session_counter = {user: 0 for user in users}
        log: list[WorkloadQuery] = []
        popular_finals: list[Goal] = []

        for _ in range(config.num_sessions):
            user = self._rng.choice(users)
            group = groups[user]
            goal_pool = group_goals[group]
            if popular_finals and self._rng.random() < config.repeat_popular_probability:
                goal = self._rng.choice(popular_finals)
            else:
                goal = self._weighted_choice(goal_pool)
            session_counter[user] += 1
            session_ordinal = session_counter[user]
            user_time[user] += self._rng.uniform(*config.inter_session_gap)
            events = self._generate_session(
                user=user,
                group=group,
                goal=goal,
                session_ordinal=session_ordinal,
                start_time=user_time[user],
            )
            if events:
                user_time[user] = events[-1].timestamp
            log.extend(events)
            popular_finals.append(goal)

        log.sort(key=lambda event: event.timestamp)
        return log

    def final_queries(self, log: list[WorkloadQuery]) -> list[WorkloadQuery]:
        """The final (fully developed) query of every session in the log."""
        return [event for event in log if event.is_final]

    # -- internals -------------------------------------------------------------

    def _assign_group_goals(
        self, goals: list[Goal], num_groups: int
    ) -> dict[str, list[tuple[Goal, float]]]:
        """Give each group a weighted preference over the goal library.

        Every group can reach every goal, but each group strongly prefers a
        distinct subset — that is what makes group-aware recommendation and
        session clustering meaningful.
        """
        assignments: dict[str, list[tuple[Goal, float]]] = {}
        for group_index in range(num_groups):
            weighted: list[tuple[Goal, float]] = []
            for goal_index, goal in enumerate(goals):
                preferred = goal_index % num_groups == group_index
                weight = 4.0 if preferred else 0.5
                weighted.append((goal, weight))
            assignments[f"group{group_index + 1}"] = weighted
        return assignments

    def _weighted_choice(self, weighted: list[tuple[Goal, float]]) -> Goal:
        total = sum(weight for _, weight in weighted)
        threshold = self._rng.uniform(0.0, total)
        cumulative = 0.0
        for goal, weight in weighted:
            cumulative += weight
            if threshold <= cumulative:
                return goal
        return weighted[-1][0]

    def _generate_session(
        self,
        user: str,
        group: str,
        goal: Goal,
        session_ordinal: int,
        start_time: float,
    ) -> list[WorkloadQuery]:
        config = self.config
        rng = self._rng
        state = _SessionState.initial(goal, rng)
        timestamp = start_time
        events: list[WorkloadQuery] = []
        step = 0
        max_steps = 12

        def emit(is_final: bool) -> None:
            nonlocal step
            annotation = None
            if is_final and goal.annotation and rng.random() < config.annotation_probability:
                annotation = goal.annotation
            events.append(
                WorkloadQuery(
                    user=user,
                    group=group,
                    timestamp=timestamp,
                    sql=state.render(),
                    goal=goal.name,
                    session_ordinal=session_ordinal,
                    step=step,
                    is_final=is_final,
                    annotation=annotation,
                )
            )
            step += 1

        emit(is_final=state.is_complete)
        while not state.is_complete and step < max_steps:
            possible = state.possible_steps()
            # Prefer structural steps early, constants in the middle.
            chosen = rng.choice(possible)
            state.apply(chosen, rng)
            timestamp += rng.uniform(*config.intra_session_gap)
            emit(is_final=state.is_complete)
        if events and not events[-1].is_final:
            # The step cap interrupted the session; its last query still counts
            # as the session's outcome for evaluation purposes.
            events[-1].is_final = True
        return events
