"""Synthetic schemas, data generators, and query-log workload generators.

The paper's motivating environments are large shared scientific databases
(SDSS, IRIS, LSST) and industrial log analysis.  Since those query logs are
proprietary, this package generates synthetic but structurally faithful
substitutes:

* :mod:`repro.workloads.schemas` — a limnology (water science) schema matching
  the paper's running example, a sky-survey schema, and a web-analytics
  schema, each with deterministic data generators;
* :mod:`repro.workloads.generator` — a multi-user behaviour model that emits
  query sessions with exploration, refinement, copy-and-edit and error
  behaviours (the properties the CQMS features rely on);
* :mod:`repro.workloads.evolution` — schema-evolution scenarios for the
  query-maintenance experiments.
"""

from repro.workloads.schemas import (
    limnology_schema,
    sky_survey_schema,
    web_analytics_schema,
    populate_limnology,
    populate_sky_survey,
    populate_web_analytics,
    build_database,
)
from repro.workloads.generator import (
    WorkloadConfig,
    WorkloadQuery,
    QueryLogGenerator,
    GOAL_LIBRARY,
)
from repro.workloads.evolution import EvolutionStep, evolution_scenario

__all__ = [
    "limnology_schema",
    "sky_survey_schema",
    "web_analytics_schema",
    "populate_limnology",
    "populate_sky_survey",
    "populate_web_analytics",
    "build_database",
    "WorkloadConfig",
    "WorkloadQuery",
    "QueryLogGenerator",
    "GOAL_LIBRARY",
    "EvolutionStep",
    "evolution_scenario",
]
