"""Structural verifier for physical plans.

Every :class:`~repro.storage.planner.SelectPlan` /
:class:`~repro.storage.planner.DmlPlan` the planner emits promises the
executor a set of contracts that nothing used to check:

* **binding shape** — an operator's ``bindings`` must be exactly what its
  children produce (joins concatenate, filters and aggregates pass through,
  leaf scans expose their table's schema), because compiled row-dict getters
  trust those names blindly;
* **column resolution** — every ``ColumnRef`` an operator evaluates must be
  resolvable against the bindings flowing into it (build keys against the
  build side, probe keys against the probe side, residuals against the
  joined row);
* **sort claims** — ``sort_eliminated`` / ``sort_prefix`` assert that an
  ordered ``RangeScan`` at the bottom of the pipeline delivers the leading
  ORDER BY key, with matching direction;
* **batch contract** — aggregate operators are consumed through
  ``groups(ctx)`` and may only sit at the very top of the pipeline
  (``plan.aggregate``), never inside the streamed ``root`` tree;
* **parallel safety** — a ``ParallelSeqScan`` is strictly a leaf and never
  drives DML (candidate rows must stream on the coordinator and be
  materialized before mutation);
* **parameter reachability** — every ``ParamLiteral`` in the statement must
  be reachable from the operator tree (or the post-pipeline clauses the
  executor evaluates from the statement), otherwise positional re-binding of
  a cached plan would silently execute with a stale constant.  A planner
  that folds a parameter away must declare it via ``plan.rebind_unsafe``.

The verifier is wired into the executor behind
``ExecutionSettings.verify_plans`` and runs over a generated plan corpus in
CI (:mod:`repro.analysis.corpus`).
"""

from __future__ import annotations

from repro.sql.ast_nodes import (
    ColumnRef,
    Expression,
    SelectStatement,
    iter_expressions,
    iter_subqueries,
)
from repro.sql.canonicalize import ParamLiteral, collect_parameters
from repro.storage.operators import (
    EmptyRow,
    Filter,
    GroupAggregate,
    HashJoin,
    IndexLookupJoin,
    IndexScan,
    NestedLoopJoin,
    Operator,
    OuterJoin,
    ParallelSeqScan,
    RangeScan,
    SeqScan,
    SubqueryScan,
)
from repro.storage.planner import DmlPlan, SelectPlan

from repro.analysis.framework import Diagnostic, Rule, Severity

BINDING_SHAPE = Rule(
    "plan-binding-shape", Severity.ERROR, "operator bindings diverge from children"
)
COLUMN_RESOLUTION = Rule(
    "plan-column-resolution", Severity.ERROR, "column unresolvable at its operator"
)
SORT_CLAIM = Rule(
    "plan-sort-claim", Severity.ERROR, "claimed sort order is not delivered"
)
BATCH_CONTRACT = Rule(
    "plan-batch-contract", Severity.ERROR, "aggregate operator inside the batch pipeline"
)
PARALLEL_SAFETY = Rule(
    "plan-parallel-safety", Severity.ERROR, "unsafe use of a parallel scan"
)
PARAM_BINDING = Rule(
    "plan-param-binding", Severity.ERROR, "parameter unreachable for plan-cache re-binding"
)
COLUMNAR_CONTRACT = Rule(
    "plan-columnar-contract", Severity.ERROR, "columnar pipeline contract violated"
)

RULES: tuple[Rule, ...] = (
    BINDING_SHAPE,
    COLUMN_RESOLUTION,
    SORT_CLAIM,
    BATCH_CONTRACT,
    PARALLEL_SAFETY,
    PARAM_BINDING,
    COLUMNAR_CONTRACT,
)


def _walk(operator: Operator):
    yield operator
    for child in operator.children:
        yield from _walk(child)


def _resolvable(ref: ColumnRef, bindings: list[tuple[str, list[str]]]) -> bool:
    """Mirror of the executor's Scope/compiled-getter resolution rules."""
    if ref.table is not None:
        for name, columns in bindings:
            if name.lower() == ref.table.lower():
                return any(column.lower() == ref.name.lower() for column in columns)
        return False
    return any(
        column.lower() == ref.name.lower()
        for _, columns in bindings
        for column in columns
    )


class PlanVerifier:
    """Checks one plan against the executor's structural contracts.

    ``allow_outer=True`` relaxes column resolution for plans executed with an
    outer scope (correlated subqueries): references that do not resolve
    locally may legitimately resolve against the enclosing query's row at
    run time.
    """

    def verify(self, plan, allow_outer: bool = False) -> list[Diagnostic]:
        if isinstance(plan, SelectPlan):
            return self.verify_select(plan, allow_outer=allow_outer)
        if isinstance(plan, DmlPlan):
            return self.verify_dml(plan)
        raise TypeError(f"cannot verify {type(plan).__name__}")

    # -- SELECT ---------------------------------------------------------------

    def verify_select(self, plan: SelectPlan, allow_outer: bool = False) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        top = plan.aggregate if plan.aggregate is not None else plan.root
        for operator in _walk(top):
            self._check_binding_shape(operator, diagnostics)
            self._check_columns(operator, allow_outer, diagnostics)
            self._check_parallel(operator, diagnostics)
            self._check_columnar(operator, diagnostics)
            if isinstance(operator, SubqueryScan):
                diagnostics.extend(
                    self.verify_select(operator.plan, allow_outer=allow_outer)
                )
        self._check_batch_contract(plan, diagnostics)
        self._check_sort_claim(plan, diagnostics)
        self._check_params(plan, top, diagnostics)
        return diagnostics

    # -- DML ------------------------------------------------------------------

    def verify_dml(self, plan: DmlPlan) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for operator in _walk(plan.root):
            self._check_binding_shape(operator, diagnostics)
            self._check_columns(operator, False, diagnostics)
            if isinstance(operator, ParallelSeqScan):
                diagnostics.append(
                    PARALLEL_SAFETY.at(
                        operator.label(),
                        f"{plan.kind.upper()} driven by a ParallelSeqScan: DML "
                        f"candidates must stream on the coordinator",
                    )
                )
            if isinstance(operator, GroupAggregate):
                diagnostics.append(
                    BATCH_CONTRACT.at(
                        operator.label(), "aggregate operator inside a DML plan"
                    )
                )
        return diagnostics

    # -- individual checks ----------------------------------------------------

    def _check_binding_shape(
        self, operator: Operator, diagnostics: list[Diagnostic]
    ) -> None:
        expected: list[tuple[str, list[str]]] | None = None
        if isinstance(operator, (Filter, GroupAggregate)):
            expected = operator.child.bindings
        elif isinstance(operator, (HashJoin, NestedLoopJoin, OuterJoin)):
            expected = operator.left.bindings + operator.right.bindings
        elif isinstance(operator, IndexLookupJoin):
            expected = operator.outer.bindings + operator.scan.bindings
        elif isinstance(operator, (SeqScan, IndexScan, RangeScan)):
            table_columns = list(operator.table.schema.column_names)
            if len(operator.bindings) != 1 or list(operator.bindings[0][1]) != table_columns:
                diagnostics.append(
                    BINDING_SHAPE.at(
                        operator.label(),
                        "scan bindings do not expose the table schema",
                    )
                )
            return
        elif isinstance(operator, SubqueryScan):
            if len(operator.bindings) != 1 or list(operator.bindings[0][1]) != list(
                operator.plan.output_columns
            ):
                diagnostics.append(
                    BINDING_SHAPE.at(
                        operator.label(),
                        "subquery scan bindings diverge from the subplan's output",
                    )
                )
            return
        elif isinstance(operator, EmptyRow):
            if operator.bindings:
                diagnostics.append(
                    BINDING_SHAPE.at(operator.label(), "EmptyRow must bind nothing")
                )
            return
        if expected is not None and list(operator.bindings) != list(expected):
            diagnostics.append(
                BINDING_SHAPE.at(
                    operator.label(),
                    "operator bindings are not the concatenation of its children's",
                )
            )

    def _operator_expressions(self, operator: Operator):
        """``(expression, input bindings)`` pairs the operator will evaluate."""
        if isinstance(operator, Filter):
            for predicate in operator.predicates:
                yield predicate, operator.child.bindings
        elif isinstance(operator, HashJoin):
            for left_key, right_key in operator.pairs:
                yield left_key, operator.left.bindings
                yield right_key, operator.right.bindings
        elif isinstance(operator, IndexLookupJoin):
            yield operator.outer_key, operator.outer.bindings
            for predicate in operator.residual:
                yield predicate, operator.bindings
        elif isinstance(operator, OuterJoin):
            if operator.condition is not None:
                yield operator.condition, operator.bindings
        elif isinstance(operator, GroupAggregate):
            for expr in operator.group_exprs:
                yield expr, operator.child.bindings
            if operator.having is not None:
                # HAVING may reference both group keys and aggregate results;
                # only plain column references are checkable here.
                yield operator.having, operator.child.bindings
        elif isinstance(operator, IndexScan) and operator.probe:
            # The probe expression is evaluated against the *outer* row of the
            # driving IndexLookupJoin; that join yields it as outer_key.
            return

    def _check_columns(
        self, operator: Operator, allow_outer: bool, diagnostics: list[Diagnostic]
    ) -> None:
        for expr, bindings in self._operator_expressions(operator):
            for node in iter_expressions(expr):
                if not isinstance(node, ColumnRef):
                    continue
                if _resolvable(node, bindings):
                    continue
                if allow_outer:
                    continue  # may resolve against the enclosing query's row
                diagnostics.append(
                    COLUMN_RESOLUTION.at(
                        operator.label(),
                        f"column {node.table + '.' if node.table else ''}{node.name} "
                        f"is not resolvable from this operator's input",
                    )
                )

    def _check_columnar(self, operator: Operator, diagnostics: list[Diagnostic]) -> None:
        """The columnar handshake's structural promises.

        A ``columnar_capable()`` operator tells consumers its
        ``col_batches`` stream is safe to use.  A :class:`ColumnBatch`
        carries exactly one binding, capability only composes through an
        unbroken chain (a capable Filter over a row-only child would crash
        asking it for column batches), and the chain must bottom out at a
        heap scan — the only operator family that builds batches from bare
        stored rows.
        """
        if not operator.columnar_capable():
            return
        if len(operator.bindings) != 1:
            diagnostics.append(
                COLUMNAR_CONTRACT.at(
                    operator.label(),
                    "columnar-capable operator must expose exactly one binding "
                    "(a ColumnBatch carries a single relation)",
                )
            )
        if isinstance(operator, Filter):
            if not operator.child.columnar_capable():
                diagnostics.append(
                    COLUMNAR_CONTRACT.at(
                        operator.label(),
                        "columnar-capable Filter over a non-columnar child: "
                        "col_batches would have no upstream to consume",
                    )
                )
        elif not isinstance(operator, SeqScan):
            diagnostics.append(
                COLUMNAR_CONTRACT.at(
                    operator.label(),
                    "columnar capability is only defined for heap scans and "
                    "kernel-compiled filters over them",
                )
            )

    def _check_parallel(self, operator: Operator, diagnostics: list[Diagnostic]) -> None:
        if isinstance(operator, ParallelSeqScan) and operator.children:
            diagnostics.append(
                PARALLEL_SAFETY.at(
                    operator.label(),
                    "ParallelSeqScan must be a leaf: workers cannot re-enter the "
                    "operator tree",
                )
            )

    def _check_batch_contract(self, plan: SelectPlan, diagnostics: list[Diagnostic]) -> None:
        for operator in _walk(plan.root):
            if isinstance(operator, GroupAggregate):
                diagnostics.append(
                    BATCH_CONTRACT.at(
                        operator.label(),
                        "aggregate operator inside the streamed pipeline: it is "
                        "consumed via groups() and must be plan.aggregate",
                    )
                )
        if plan.aggregate is not None:
            if not isinstance(plan.aggregate, GroupAggregate):
                diagnostics.append(
                    BATCH_CONTRACT.at(
                        plan.aggregate.label(),
                        "plan.aggregate is not an aggregate operator",
                    )
                )
            elif plan.aggregate.child is not plan.root:
                diagnostics.append(
                    BATCH_CONTRACT.at(
                        plan.aggregate.label(),
                        "plan.aggregate must consume plan.root directly",
                    )
                )

    def _check_sort_claim(self, plan: SelectPlan, diagnostics: list[Diagnostic]) -> None:
        if not plan.sort_eliminated and not plan.sort_prefix:
            return
        order_by = plan.statement.order_by
        label = plan.root.label()
        if not order_by:
            diagnostics.append(
                SORT_CLAIM.at(label, "sort claimed but the statement has no ORDER BY")
            )
            return
        if plan.sort_prefix > len(order_by) or (
            plan.sort_eliminated and plan.sort_prefix < len(order_by)
        ):
            diagnostics.append(
                SORT_CLAIM.at(
                    label,
                    f"sort_prefix={plan.sort_prefix} inconsistent with "
                    f"{len(order_by)} ORDER BY keys (eliminated={plan.sort_eliminated})",
                )
            )
            return
        if plan.aggregate is not None:
            diagnostics.append(
                SORT_CLAIM.at(label, "sort elimination cannot survive an aggregate stage")
            )
            return
        leading = order_by[0]
        if not isinstance(leading.expression, ColumnRef):
            diagnostics.append(
                SORT_CLAIM.at(label, "claimed sort key is not a plain column")
            )
            return
        node = plan.root
        while isinstance(node, Filter):
            node = node.child
        if not isinstance(node, RangeScan):
            diagnostics.append(
                SORT_CLAIM.at(
                    label,
                    f"claimed ordered delivery but the pipeline bottoms out in "
                    f"{type(node).__name__}, not an ordered RangeScan",
                )
            )
            return
        if node.column.lower() != leading.expression.name.lower():
            diagnostics.append(
                SORT_CLAIM.at(
                    label,
                    f"ordered scan walks {node.column!r} but ORDER BY leads with "
                    f"{leading.expression.name!r}",
                )
            )
        if node.descending != (not leading.ascending):
            diagnostics.append(
                SORT_CLAIM.at(
                    label,
                    "ordered scan direction contradicts the ORDER BY direction",
                )
            )

    def _check_params(
        self, plan: SelectPlan, top: Operator, diagnostics: list[Diagnostic]
    ) -> None:
        parameters = collect_parameters(plan.statement)
        if not parameters:
            return
        if getattr(plan, "rebind_unsafe", False):
            return  # declared: the plan cache refuses to cache it
        reachable: set[int] = set()

        def mark(expr: Expression | None) -> None:
            if expr is None:
                return
            stack = [expr]
            while stack:
                current = stack.pop()
                for node in iter_expressions(current):
                    if isinstance(node, ParamLiteral):
                        reachable.add(id(node))
                for subquery in iter_subqueries(current):
                    _mark_statement(subquery)

        def _mark_statement(statement: SelectStatement) -> None:
            mark(statement.where)
            mark(statement.having)
            for item in statement.select_items:
                mark(item.expression)
            for expr in statement.group_by:
                mark(expr)
            for item in statement.order_by:
                mark(item.expression)

        for operator in _walk(top):
            for expr, _ in self._operator_expressions(operator):
                mark(expr)
            if isinstance(operator, IndexScan):
                mark(operator.value_expr)
            elif isinstance(operator, RangeScan):
                mark(operator.low)
                mark(operator.high)
            elif isinstance(operator, SubqueryScan):
                _mark_statement(operator.plan.statement)
        # Post-pipeline clauses the executor evaluates from the statement.
        statement = plan.statement
        for item in statement.select_items:
            mark(item.expression)
        for expr in statement.group_by:
            mark(expr)
        mark(statement.having)
        for item in statement.order_by:
            mark(item.expression)
        for parameter in parameters:
            if id(parameter) not in reachable:
                diagnostics.append(
                    PARAM_BINDING.at(
                        top.label(),
                        f"parameter (value {parameter.value!r}) is unreachable from "
                        f"the operator tree; re-binding a cached plan would use a "
                        f"stale constant",
                    )
                )
