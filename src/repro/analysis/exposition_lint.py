"""Exposition-format lint: validate Prometheus text output series-by-series.

The metrics endpoint (:meth:`~repro.core.cqms.CQMS.metrics_text`) is an
interface contract with external scrapers, and text formats rot silently —
a malformed label escape or a duplicated series does not crash anything
here, it corrupts someone else's dashboard weeks later.  This pass parses
an exposition document the way a scraper would and reports:

* ``exposition-format`` — a line that is neither a valid sample, a
  ``# HELP``/``# TYPE`` comment, nor blank; an unparsable sample value; a
  ``TYPE`` naming an unknown kind.
* ``missing-metadata`` — a sample whose family was never declared with
  ``# TYPE`` (scrapers then guess the kind) or ``# HELP``.
* ``duplicate-series`` — the same metric name + label set emitted twice;
  the second value silently wins in most scrapers.
* ``unlabelled-series`` — a sample carrying no labels at all.  Engine
  series must carry at least the ``engine=`` dimension (two databases run
  in one process here), so a bare series is almost always a bug.
* ``metric-naming`` — a family outside the ``repro_`` namespace, or a
  ``counter`` family missing the ``_total`` suffix.
* ``histogram-consistency`` — ``le`` bucket counts that decrease as bounds
  grow, or a ``+Inf`` bucket disagreeing with ``_count``.
* ``min-series`` — fewer distinct series than the caller's floor (used by
  CI to assert the engine actually exposes its telemetry surface).
"""

from __future__ import annotations

import math
import re

from repro.analysis.framework import Diagnostic, DiagnosticReport, Rule, Severity

EXPOSITION_FORMAT = Rule(
    "exposition-format", Severity.ERROR, "line is not valid exposition text"
)
MISSING_METADATA = Rule(
    "missing-metadata", Severity.ERROR, "sample without # HELP/# TYPE metadata"
)
DUPLICATE_SERIES = Rule(
    "duplicate-series", Severity.ERROR, "metric name + label set emitted twice"
)
UNLABELLED_SERIES = Rule(
    "unlabelled-series", Severity.ERROR, "sample carries no labels"
)
METRIC_NAMING = Rule(
    "metric-naming", Severity.ERROR, "series violates the naming scheme"
)
HISTOGRAM_CONSISTENCY = Rule(
    "histogram-consistency", Severity.ERROR, "histogram buckets are inconsistent"
)
MIN_SERIES = Rule(
    "min-series", Severity.ERROR, "fewer distinct series than required"
)

RULES: tuple[Rule, ...] = (
    EXPOSITION_FORMAT,
    MISSING_METADATA,
    DUPLICATE_SERIES,
    UNLABELLED_SERIES,
    METRIC_NAMING,
    HISTOGRAM_CONSISTENCY,
    MIN_SERIES,
)

_KINDS = {"counter", "gauge", "histogram", "summary", "untyped"}

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_METRIC_RE = re.compile(
    rf"^(?P<name>{_NAME})(?:\{{(?P<labels>.*)\}})?\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(rf'({_NAME})="((?:[^"\\]|\\.)*)"')
_HELP_RE = re.compile(rf"^# HELP (?P<name>{_NAME}) (?P<text>.*)$")
_TYPE_RE = re.compile(rf"^# TYPE (?P<name>{_NAME}) (?P<kind>\S+)\s*$")

#: ``X_bucket``/``X_sum``/``X_count`` samples belong to histogram family X.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_value(raw: str) -> float | None:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        return None


def _parse_labels(raw: str | None) -> dict[str, str] | None:
    """The label dict of a sample, or None when the block is malformed."""
    if raw is None:
        return {}
    matched = _LABEL_RE.findall(raw)
    # Re-render what we matched and compare the consumed length: leftovers
    # mean a bad escape or a missing quote the regex silently skipped.
    consumed = ",".join(f'{name}="{value}"' for name, value in matched)
    normalized = raw.rstrip(",")
    if consumed.replace(" ", "") != normalized.replace(" ", ""):
        return None
    return dict(matched)


def _family_of(sample_name: str, typed: dict[str, str]) -> str:
    """The declared family a sample belongs to (histogram suffix aware)."""
    if sample_name in typed:
        return sample_name
    for suffix in _HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if typed.get(base) == "histogram":
                return base
    return sample_name


def lint_exposition(
    text: str,
    namespace: str = "repro",
    min_series: int | None = None,
) -> DiagnosticReport:
    """Lint one exposition document; locations are ``metrics:<line>``."""
    report = DiagnosticReport()
    typed: dict[str, str] = {}
    helped: set[str] = set()
    seen_series: dict[tuple[str, tuple[tuple[str, str], ...]], int] = {}
    # family -> labels-without-le -> [(bound, cumulative count, line)]
    buckets: dict[str, dict[tuple[tuple[str, str], ...], list[tuple[float, float, int]]]] = {}
    counts: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}

    for line_no, line in enumerate(text.splitlines(), start=1):
        where = f"metrics:{line_no}"
        if not line.strip():
            continue
        if line.startswith("#"):
            help_match = _HELP_RE.match(line)
            if help_match:
                helped.add(help_match.group("name"))
                continue
            type_match = _TYPE_RE.match(line)
            if type_match:
                kind = type_match.group("kind")
                if kind not in _KINDS:
                    report.add(
                        EXPOSITION_FORMAT.at(
                            where, f"unknown metric kind {kind!r} in # TYPE"
                        )
                    )
                typed[type_match.group("name")] = kind
                continue
            if line.startswith("# HELP") or line.startswith("# TYPE"):
                report.add(EXPOSITION_FORMAT.at(where, f"malformed comment {line!r}"))
            continue  # other comments are legal and ignored
        sample = _METRIC_RE.match(line)
        if sample is None:
            report.add(EXPOSITION_FORMAT.at(where, f"unparsable sample line {line!r}"))
            continue
        name = sample.group("name")
        value = _parse_value(sample.group("value"))
        if value is None:
            report.add(
                EXPOSITION_FORMAT.at(
                    where, f"unparsable sample value {sample.group('value')!r}"
                )
            )
            continue
        labels = _parse_labels(sample.group("labels"))
        if labels is None:
            report.add(
                EXPOSITION_FORMAT.at(
                    where, f"malformed label block in {line!r}"
                )
            )
            continue
        family = _family_of(name, typed)
        if family not in typed:
            report.add(
                MISSING_METADATA.at(where, f"sample {name!r} has no # TYPE declaration")
            )
        elif family not in helped:
            report.add(
                MISSING_METADATA.at(where, f"family {family!r} has no # HELP text")
            )
        if not labels:
            report.add(
                UNLABELLED_SERIES.at(
                    where,
                    f"series {name!r} carries no labels (engine series need at "
                    f"least the engine= dimension)",
                )
            )
        key = (name, tuple(sorted(labels.items())))
        if key in seen_series:
            report.add(
                DUPLICATE_SERIES.at(
                    where,
                    f"series {name}{dict(labels)!r} already emitted at "
                    f"line {seen_series[key]}",
                )
            )
        else:
            seen_series[key] = line_no
        if not name.startswith(namespace + "_"):
            report.add(
                METRIC_NAMING.at(
                    where, f"series {name!r} outside the {namespace}_ namespace"
                )
            )
        if typed.get(family) == "counter" and not family.endswith("_total"):
            report.add(
                METRIC_NAMING.at(
                    where, f"counter family {family!r} missing the _total suffix"
                )
            )
        if typed.get(family) == "histogram":
            base_labels = tuple(
                sorted(item for item in labels.items() if item[0] != "le")
            )
            if name == family + "_bucket":
                bound = _parse_value(labels.get("le", ""))
                if bound is None:
                    report.add(
                        EXPOSITION_FORMAT.at(
                            where, f"histogram bucket with unparsable le={labels.get('le')!r}"
                        )
                    )
                else:
                    buckets.setdefault(family, {}).setdefault(base_labels, []).append(
                        (bound, value, line_no)
                    )
            elif name == family + "_count":
                counts.setdefault(family, {})[base_labels] = value

    for family, children in buckets.items():
        for base_labels, series in children.items():
            ordered = sorted(series)
            last = -math.inf
            for bound, cumulative, line_no in ordered:
                if cumulative < last:
                    report.add(
                        HISTOGRAM_CONSISTENCY.at(
                            f"metrics:{line_no}",
                            f"{family} bucket le={bound:g} count {cumulative:g} "
                            f"below the previous bucket's {last:g}",
                        )
                    )
                last = cumulative
            inf_buckets = [item for item in ordered if item[0] == math.inf]
            total = counts.get(family, {}).get(base_labels)
            if not inf_buckets:
                report.add(
                    HISTOGRAM_CONSISTENCY.at(
                        f"metrics:{ordered[-1][2]}",
                        f"{family}{dict(base_labels)!r} has no le=\"+Inf\" bucket",
                    )
                )
            elif total is not None and inf_buckets[-1][1] != total:
                report.add(
                    HISTOGRAM_CONSISTENCY.at(
                        f"metrics:{inf_buckets[-1][2]}",
                        f"{family} +Inf bucket {inf_buckets[-1][1]:g} != _count {total:g}",
                    )
                )

    if min_series is not None and len(seen_series) < min_series:
        report.add(
            MIN_SERIES.at(
                "metrics:0",
                f"document exposes {len(seen_series)} distinct series, "
                f"required at least {min_series}",
            )
        )
    return report


def lint_live_engine(min_series: int = 25) -> tuple[DiagnosticReport, int]:
    """Build a small populated CQMS and lint its live exposition output.

    This is the CI entry point behind ``python -m repro.analysis
    lint-metrics``: it exercises the real registry (both engines, admission
    control, the profiler) rather than a fixture string, so a regression in
    any instrumented layer surfaces as a lint failure.  Returns the report
    plus the number of distinct series rendered.
    """
    from repro.clock import SimulatedClock
    from repro.core.config import CQMSConfig
    from repro.core.cqms import CQMS
    from repro.errors import RateLimitedError, ReproError
    from repro.obs import QueryLimits
    from repro.workloads import build_database

    clock = SimulatedClock()
    database = build_database("limnology", scale=1)
    config = CQMSConfig(slow_query_threshold_seconds=0.0)
    cqms = CQMS(database, config=config, clock=clock)
    cqms.register_user("ana", "limno")
    cqms.register_user("ben", "limno")
    cqms.set_user_limits("ben", QueryLimits(rate_limit_qps=1.0, rate_limit_burst=1.0))
    statements = (
        "SELECT * FROM WaterTemp T WHERE T.temp < 18",
        "SELECT lake, count(*) FROM WaterTemp GROUP BY lake",
        "SELECT * FROM NoSuchTable",
    )
    for sql in statements:
        clock.advance(1.0)
        cqms.submit("ana", sql)
    cqms.submit("ben", statements[0])
    try:
        cqms.submit("ben", statements[1])  # second in the same tick: shed
    except RateLimitedError:
        pass
    try:
        cqms.database.execute(statements[0], timeout_seconds=-1.0)
    except ReproError:
        pass
    cqms.search_keyword("ana", ["watertemp"])
    text = cqms.metrics_text()
    report = lint_exposition(text, min_series=min_series)
    return report, cqms.metrics.series_count()
