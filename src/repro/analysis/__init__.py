"""Static-analysis subsystem: the engine's standing correctness gate.

Three cooperating passes share one :class:`Diagnostic`/:class:`Rule`/
:class:`Severity` framework (:mod:`repro.analysis.framework`):

* :mod:`repro.analysis.sql_lint` — schema-aware semantic linting of SQL
  statements (what ``QueryStore.lint_log`` runs over the whole query log);
* :mod:`repro.analysis.plan_verify` — structural invariants over every
  physical plan the planner emits (wired into the executor behind
  ``ExecutionSettings.verify_plans``; exercised corpus-wide in CI by
  :mod:`repro.analysis.corpus`);
* :mod:`repro.analysis.hazard_lint` — ``ast``-walking rules over
  ``src/repro`` itself (WAL pairing, locks across yields, broad excepts,
  wall-clock calls, metrics single-writer).

``python -m repro.analysis`` is the CLI (``lint`` / ``verify-plans`` /
``lint-sql``); see :mod:`repro.analysis.__main__`.
"""

from repro.analysis.framework import Diagnostic, DiagnosticReport, Rule, Severity

__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "Rule",
    "Severity",
]
