"""Engine hazard lint: ``ast``-walking rules over the engine's own source.

The engine maintains several invariants that no type checker sees and that
the ROADMAP's next items (MVCC, replication) would turn from latent bugs
into data corruption.  This pass walks :mod:`ast` trees of ``src/repro``
and enforces them:

* ``wal-pairing`` — in any class that owns a ``wal_emit`` hook (the
  ``Table`` heap), a method that mutates ``self._rows`` must reference
  ``self.wal_emit`` inside a ``try`` whose ``except BaseException`` handler
  rolls back and re-raises; otherwise live state can diverge from what
  recovery replays.  Recovery-path methods (``restore_*``) replay the log
  itself and are exempt by convention.
* ``lock-across-yield`` — a ``with <lock>:`` block whose body yields
  suspends the generator while the lock is held; the consumer decides when
  (and whether) it is released.
* ``broad-except`` — ``except Exception``/bare ``except`` in ``storage/``
  masks the concrete error taxonomy (:class:`~repro.errors.StorageError`
  and friends) the callers dispatch on: ERROR there, WARNING elsewhere when
  the handler swallows (no ``raise`` in its body).  ``except BaseException``
  is only legitimate as the rollback idiom — body must re-raise.
* ``wall-clock`` — calls to ``time.time``/``time.monotonic`` or
  ``datetime`` *now* variants outside the sanctioned time-source modules
  (``clock.py``, which owns the injectable
  :class:`~repro.clock.SimulatedClock`, and ``obs/metrics.py``, which owns
  the :data:`~repro.obs.metrics.engine_timer` duration helper every
  instrumented site shares) make replays nondeterministic.
  ``time.perf_counter`` (duration instrumentation) is allowed, as is
  *referencing* ``time.monotonic`` uncalled (passing it as a clock).
* ``metrics-single-writer`` — a closure submitted to the shared scan pool
  must not write executor metrics: ``ExecutorMetrics`` counters are plain
  ``+=`` fields with a single-writer (coordinator thread) contract.
* ``page-pin-protocol`` — pages obtained from a buffer pool
  (:class:`~repro.storage.buffer_pool.PageStore`) must follow the pin
  protocol: a page from ``fetch()`` may be mutated but the function must
  call ``mark_dirty`` (or the write is lost on eviction) and ``unpin``
  (or the page is pinned forever and the pool can no longer evict); a page
  from the pinless ``read()`` path must never be mutated at all.
* ``columnar-mutation`` — a :class:`~repro.storage.colbatch.ColumnBatch` a
  function did not allocate itself (a parameter, or a batch consumed from a
  ``col_batches`` stream) must be treated as immutable: its rows and lazily
  extracted columns are shared with every other consumer of the scan, so
  the only legal way for a kernel to "drop" rows is returning a selection
  vector (``narrowed()`` builds the shared-state view).  Batches the
  function constructed itself are its own to fill.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.analysis.framework import Diagnostic, DiagnosticReport, Rule, Severity

WAL_PAIRING = Rule(
    "wal-pairing", Severity.ERROR, "heap mutation without a paired wal_emit/rollback"
)
LOCK_ACROSS_YIELD = Rule(
    "lock-across-yield", Severity.ERROR, "lock held across a generator yield"
)
BROAD_EXCEPT = Rule(
    "broad-except", Severity.ERROR, "broad exception handler masks concrete errors"
)
WALL_CLOCK = Rule(
    "wall-clock", Severity.ERROR, "wall-clock call outside clock.py"
)
METRICS_SINGLE_WRITER = Rule(
    "metrics-single-writer",
    Severity.ERROR,
    "executor metrics written off the coordinator thread",
)
PAGE_PIN_PROTOCOL = Rule(
    "page-pin-protocol",
    Severity.ERROR,
    "page mutation bypassing the buffer pool's pin/dirty protocol",
)
COLUMNAR_MUTATION = Rule(
    "columnar-mutation",
    Severity.ERROR,
    "in-place mutation of a ColumnBatch the function did not allocate",
)

RULES: tuple[Rule, ...] = (
    WAL_PAIRING,
    LOCK_ACROSS_YIELD,
    BROAD_EXCEPT,
    WALL_CLOCK,
    METRICS_SINGLE_WRITER,
    PAGE_PIN_PROTOCOL,
    COLUMNAR_MUTATION,
)

#: Wall-clock callables that bypass the injectable clock entirely.
_FORBIDDEN_CLOCK_CALLS = {"time", "localtime", "gmtime", "now", "utcnow", "today"}
#: Tolerated with a warning: monotonic durations are deterministic enough for
#: fallbacks, but SimulatedClock injection is still the expected path.
_WARNED_CLOCK_CALLS = {"monotonic"}


@dataclass(frozen=True)
class SourceFile:
    """One parsed source file under analysis."""

    path: Path
    rel: str  # repo-relative posix path used in diagnostics
    tree: ast.Module

    @property
    def in_storage(self) -> bool:
        return "storage" in Path(self.rel).parts

    @property
    def is_clock_module(self) -> bool:
        """True for the sanctioned time-source modules the rule exempts:
        ``clock.py`` (the injectable SimulatedClock) and ``obs/metrics.py``
        (the ``engine_timer`` duration helper)."""
        path = Path(self.rel)
        if path.name == "clock.py":
            return True
        return path.name == "metrics.py" and "obs" in path.parts

    def where(self, node: ast.AST) -> str:
        return f"{self.rel}:{getattr(node, 'lineno', 0)}"


def iter_source_files(paths: list[str | Path]) -> Iterator[SourceFile]:
    """Yield parsed python files under ``paths`` (files or directories)."""
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            files = sorted(root.rglob("*.py"))
            base = root.parent
        else:
            files = [root]
            base = root.parent
        for path in files:
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError):
                continue  # unreadable or non-parseable: not this pass's problem
            try:
                rel = path.relative_to(base).as_posix()
            except ValueError:
                rel = path.as_posix()
            yield SourceFile(path=path, rel=rel, tree=tree)


def lint_paths(paths: list[str | Path]) -> DiagnosticReport:
    """Run every hazard rule over the python files under ``paths``."""
    report = DiagnosticReport()
    for source in iter_source_files(paths):
        report.extend(lint_source(source))
    return report


def lint_source(source: SourceFile) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    _check_wal_pairing(source, diagnostics)
    _check_lock_across_yield(source, diagnostics)
    _check_broad_except(source, diagnostics)
    _check_wall_clock(source, diagnostics)
    _check_metrics_single_writer(source, diagnostics)
    _check_page_pin_protocol(source, diagnostics)
    _check_columnar_mutation(source, diagnostics)
    return diagnostics


# -- wal-pairing ----------------------------------------------------------------


def _attribute_chain(node: ast.AST) -> str:
    """Dotted name of an attribute/name chain ("self._rows.pop"), "" otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _mutates_heap(func: ast.FunctionDef) -> ast.AST | None:
    """First statement mutating ``self._rows`` in-place, or None."""
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    if _attribute_chain(target.value) == "self._rows":
                        return node
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    if _attribute_chain(target.value) == "self._rows":
                        return node
        elif isinstance(node, ast.Call):
            chain = _attribute_chain(node.func)
            if chain in ("self._rows.pop", "self._rows.clear", "self._rows.update"):
                return node
    return None


def _has_guarded_wal_emit(func: ast.FunctionDef) -> bool:
    """True when ``self.wal_emit`` is called inside a try whose
    ``except BaseException`` handler re-raises (the rollback idiom)."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Try):
            continue
        calls_wal = any(
            isinstance(inner, ast.Call)
            and _attribute_chain(inner.func) == "self.wal_emit"
            for body_stmt in node.body
            for inner in ast.walk(body_stmt)
        )
        if not calls_wal:
            continue
        for handler in node.handlers:
            if (
                isinstance(handler.type, ast.Name)
                and handler.type.id == "BaseException"
                and any(isinstance(s, ast.Raise) for s in ast.walk(ast.Module(body=handler.body, type_ignores=[])))
            ):
                return True
    return False


def _check_wal_pairing(source: SourceFile, diagnostics: list[Diagnostic]) -> None:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        owns_wal = any(
            isinstance(inner, ast.Attribute)
            and inner.attr == "wal_emit"
            and isinstance(inner.value, ast.Name)
            and inner.value.id == "self"
            for inner in ast.walk(node)
        )
        if not owns_wal:
            continue
        for func in node.body:
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if func.name.startswith("restore"):
                continue  # recovery path: replays the log, never re-logs
            mutation = _mutates_heap(func)
            if mutation is None:
                continue
            refs_wal = any(
                isinstance(inner, ast.Attribute)
                and inner.attr == "wal_emit"
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "self"
                for inner in ast.walk(func)
            )
            if not refs_wal:
                diagnostics.append(
                    WAL_PAIRING.at(
                        source.where(mutation),
                        f"{node.name}.{func.name} mutates the heap without "
                        f"emitting a WAL record",
                    )
                )
            elif not _has_guarded_wal_emit(func):
                diagnostics.append(
                    WAL_PAIRING.at(
                        source.where(mutation),
                        f"{node.name}.{func.name} calls wal_emit without the "
                        f"rollback idiom (try / except BaseException: undo; raise)",
                    )
                )


# -- lock-across-yield ----------------------------------------------------------


def _looks_like_lock(expr: ast.AST) -> bool:
    chain = _attribute_chain(expr)
    leaf = chain.rsplit(".", 1)[-1] if chain else ""
    return "lock" in leaf.lower() or "mutex" in leaf.lower()


def _yields_directly(nodes: list[ast.stmt]) -> ast.AST | None:
    """First yield in ``nodes`` that is not inside a nested function/lambda."""

    class Finder(ast.NodeVisitor):
        found: ast.AST | None = None

        def visit_FunctionDef(self, node):  # do not descend
            pass

        visit_AsyncFunctionDef = visit_FunctionDef
        visit_Lambda = visit_FunctionDef

        def visit_Yield(self, node):
            if self.found is None:
                self.found = node

        visit_YieldFrom = visit_Yield

    finder = Finder()
    for stmt in nodes:
        finder.visit(stmt)
    return finder.found


def _check_lock_across_yield(source: SourceFile, diagnostics: list[Diagnostic]) -> None:
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        if not any(_looks_like_lock(item.context_expr) for item in node.items):
            continue
        yielding = _yields_directly(node.body)
        if yielding is not None:
            diagnostics.append(
                LOCK_ACROSS_YIELD.at(
                    source.where(yielding),
                    "generator yields while holding a lock: the consumer "
                    "controls when (or whether) it is released",
                )
            )


# -- broad-except ----------------------------------------------------------------


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise)
        for stmt in handler.body
        for node in ast.walk(stmt)
    )


def _check_broad_except(source: SourceFile, diagnostics: list[Diagnostic]) -> None:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        name = node.type.id if isinstance(node.type, ast.Name) else None
        if node.type is not None and name not in ("Exception", "BaseException"):
            continue
        if name == "BaseException":
            if not _handler_reraises(node):
                diagnostics.append(
                    BROAD_EXCEPT.at(
                        source.where(node),
                        "except BaseException that does not re-raise: only the "
                        "rollback idiom may catch it",
                    )
                )
            continue
        caught = "bare except" if node.type is None else "except Exception"
        if source.in_storage:
            diagnostics.append(
                BROAD_EXCEPT.at(
                    source.where(node),
                    f"{caught} in storage/: catch the concrete StorageError "
                    f"subtypes (plus the specific stdlib errors) instead",
                )
            )
        elif not _handler_reraises(node):
            diagnostics.append(
                BROAD_EXCEPT.at(
                    source.where(node),
                    f"{caught} swallows errors silently",
                    severity=Severity.WARNING,
                )
            )


# -- wall-clock ------------------------------------------------------------------


def _clock_call_name(call: ast.Call, imported: dict[str, str]) -> str | None:
    """The forbidden clock function a call invokes, or None."""
    func = call.func
    if isinstance(func, ast.Attribute):
        base = _attribute_chain(func.value)
        if base in ("time", "datetime", "datetime.datetime", "date", "datetime.date"):
            return func.attr
        return None
    if isinstance(func, ast.Name):
        return imported.get(func.id)
    return None


def _check_wall_clock(source: SourceFile, diagnostics: list[Diagnostic]) -> None:
    if source.is_clock_module:
        return
    imported: dict[str, str] = {}  # local name -> original function name
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ImportFrom) and node.module in ("time", "datetime"):
            for alias in node.names:
                imported[alias.asname or alias.name] = alias.name
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _clock_call_name(node, imported)
        if name is None:
            continue
        if name in _FORBIDDEN_CLOCK_CALLS:
            diagnostics.append(
                WALL_CLOCK.at(
                    source.where(node),
                    f"wall-clock call {name}() outside the sanctioned time "
                    f"modules (clock.py, obs/metrics.py): inject the engine "
                    f"clock (SimulatedClock in tests) or use engine_timer",
                )
            )
        elif name in _WARNED_CLOCK_CALLS:
            diagnostics.append(
                WALL_CLOCK.at(
                    source.where(node),
                    f"{name}() bypasses the injectable clock; acceptable only "
                    f"as a fallback",
                    severity=Severity.WARNING,
                )
            )


# -- metrics-single-writer -------------------------------------------------------


# -- page-pin-protocol ------------------------------------------------------------

#: Mutating dict/list methods; calling one on a tracked page object counts as
#: an in-place page mutation (the same set the heap and B+ tree code uses).
_PAGE_MUTATORS = {
    "pop",
    "clear",
    "update",
    "setdefault",
    "insert",
    "append",
    "extend",
    "remove",
    "popitem",
}


def _is_page_store_call(node: ast.AST, method: str) -> bool:
    """True for ``<receiver>.<method>(...)`` where the receiver looks like a
    buffer pool ("store" or "pool" in its dotted name)."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return False
    if node.func.attr != method:
        return False
    receiver = _attribute_chain(node.func.value).lower()
    return "store" in receiver or "pool" in receiver


def _page_mutation_name(node: ast.AST) -> str | None:
    """The plain variable name an in-place mutation targets, or None.

    Catches ``page[k] = v`` / ``del page[k]`` / ``page.pop(...)``-style
    mutator calls.  Deliberately shallow — mutations through sub-objects
    (``page["keys"].insert``) escape the heuristic, like the wal-pairing
    rule's, but every protocol violation starts somewhere visible.
    """
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                return target.value.id
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                return target.value.id
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _PAGE_MUTATORS and isinstance(node.func.value, ast.Name):
            return node.func.value.id
    return None


def _check_page_pin_protocol(source: SourceFile, diagnostics: list[Diagnostic]) -> None:
    for func in ast.walk(source.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        pinned: set[str] = set()
        readonly: set[str] = set()
        fetches: list[ast.AST] = []
        has_unpin = False
        has_mark_dirty = False
        for node in ast.walk(func):
            if _is_page_store_call(node, "unpin"):
                has_unpin = True
            elif _is_page_store_call(node, "mark_dirty"):
                has_mark_dirty = True
            elif _is_page_store_call(node, "fetch"):
                fetches.append(node)
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                if _is_page_store_call(node.value, "fetch"):
                    pinned.add(node.targets[0].id)
                elif _is_page_store_call(node.value, "read"):
                    readonly.add(node.targets[0].id)
        if not (pinned or readonly or fetches):
            continue
        pinned_mutations: list[ast.AST] = []
        for node in ast.walk(func):
            name = _page_mutation_name(node)
            if name is None:
                continue
            if name in readonly:
                diagnostics.append(
                    PAGE_PIN_PROTOCOL.at(
                        source.where(node),
                        f"{func.name} mutates page {name!r} obtained via the "
                        f"pinless read() path: mutate only pages pinned with "
                        f"fetch()",
                    )
                )
            elif name in pinned:
                pinned_mutations.append(node)
        if fetches and not has_unpin:
            diagnostics.append(
                PAGE_PIN_PROTOCOL.at(
                    source.where(fetches[0]),
                    f"{func.name} pins a page with fetch() but never calls "
                    f"unpin(): the buffer pool can no longer evict it",
                )
            )
        if pinned_mutations and not has_mark_dirty:
            diagnostics.append(
                PAGE_PIN_PROTOCOL.at(
                    source.where(pinned_mutations[0]),
                    f"{func.name} mutates a pinned page without mark_dirty(): "
                    f"the write is silently lost when the page is evicted",
                )
            )


def _check_metrics_single_writer(
    source: SourceFile, diagnostics: list[Diagnostic]
) -> None:
    for scope in ast.walk(source.tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        local_functions = {
            inner.name: inner
            for inner in ast.walk(scope)
            if isinstance(inner, ast.FunctionDef) and inner is not scope
        }
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in ("submit", "map"):
                continue
            receiver = ast.dump(node.func.value)
            if "pool" not in receiver.lower() and "executor" not in receiver.lower():
                continue
            if not node.args or not isinstance(node.args[0], ast.Name):
                continue
            worker = local_functions.get(node.args[0].id)
            if worker is None:
                continue
            for stmt in ast.walk(worker):
                if not isinstance(stmt, (ast.Assign, ast.AugAssign)):
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    chain = _attribute_chain(
                        target.value if isinstance(target, ast.Subscript) else target
                    )
                    if "metrics" in chain.lower():
                        diagnostics.append(
                            METRICS_SINGLE_WRITER.at(
                                source.where(stmt),
                                f"worker {worker.name!r} submitted to the scan "
                                f"pool writes {chain}: metrics counters have a "
                                f"single-writer (coordinator) contract",
                            )
                        )


# -- columnar-mutation -------------------------------------------------------------


def _annotation_text(annotation: ast.AST | None) -> str:
    """Flattened annotation text ("ColumnBatch", "colbatch.ColumnBatch", ...)."""
    if annotation is None:
        return ""
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return _attribute_chain(annotation)
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value
    return ""


def _is_columnbatch_constructor(node: ast.AST) -> bool:
    """True for ``ColumnBatch(...)`` / ``colbatch.ColumnBatch(...)`` calls."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "ColumnBatch"
    if isinstance(func, ast.Attribute):
        return func.attr == "ColumnBatch"
    return False


def _is_batch_stream_call(node: ast.AST) -> bool:
    """True for ``<x>.col_batches(...)`` (the columnar stream protocol)."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("col_batches", "_col_batches")
    )


def _foreign_batch_names(func: ast.FunctionDef) -> tuple[set[str], set[str]]:
    """``(foreign, owned)`` ColumnBatch variable names within ``func``.

    Foreign: parameters annotated ``ColumnBatch`` or named ``batch``, loop
    variables consuming a ``col_batches`` stream, and re-bindings through
    ``narrowed()`` (the view shares the original's rows and column cache).
    Owned: names assigned from a ``ColumnBatch(...)`` constructor call —
    the function may fill what it allocated.
    """
    foreign: set[str] = set()
    owned: set[str] = set()
    args = func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg == "batch" or "ColumnBatch" in _annotation_text(arg.annotation):
            foreign.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.For) and isinstance(node.target, ast.Name):
            if _is_batch_stream_call(node.iter):
                foreign.add(node.target.id)
        elif (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            name = node.targets[0].id
            if _is_columnbatch_constructor(node.value):
                owned.add(name)
            elif (
                isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr == "narrowed"
            ):
                foreign.add(name)
    return foreign - owned, owned


def _batch_mutation_target(node: ast.AST, foreign: set[str]) -> str | None:
    """The foreign batch name a statement mutates in place, or None.

    Catches attribute writes (``batch.selection = ...``), subscript writes
    one level deep (``batch.rows[i] = ...``), and mutator-method calls on
    the batch or its attributes (``batch.rows.append(...)``).
    """

    def base_name(target: ast.AST) -> str | None:
        if isinstance(target, ast.Attribute):
            target = target.value
        if isinstance(target, ast.Name) and target.id in foreign:
            return target.id
        return None

    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute):
                name = base_name(target)
                if name is not None:
                    return name
            elif isinstance(target, ast.Subscript):
                name = base_name(target.value)
                if name is not None:
                    return name
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                inner = target.value if isinstance(target, ast.Subscript) else target
                name = base_name(inner)
                if name is not None:
                    return name
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _PAGE_MUTATORS | {"sort", "reverse"}:
            name = base_name(node.func.value)
            if name is not None:
                return name
    return None


def _check_columnar_mutation(source: SourceFile, diagnostics: list[Diagnostic]) -> None:
    for func in ast.walk(source.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        foreign, _ = _foreign_batch_names(func)
        if not foreign:
            continue
        for node in ast.walk(func):
            name = _batch_mutation_target(node, foreign)
            if name is None:
                continue
            diagnostics.append(
                COLUMNAR_MUTATION.at(
                    source.where(node),
                    f"{func.name} mutates ColumnBatch {name!r} it did not "
                    f"allocate: batches share rows and column caches across "
                    f"consumers — filters must return a selection vector "
                    f"(narrowed() builds the view) instead of editing in place",
                )
            )
