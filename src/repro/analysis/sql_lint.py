"""Schema-aware SQL semantic linter.

Lints parsed statements against a schema — either a live
:class:`~repro.storage.catalog.Catalog` (full column types, and index
information when a table provider is attached) or a bare
``{table: [columns]}`` mapping such as the one the Query Storage keeps for
the user database (name checks only; type- and index-aware rules quietly
stand down).

The linter is what lets the CQMS *reason about* the queries it stores: the
paper's ``Queries.invalidReason`` attribute was only ever set by hand, while
``QueryStore.lint_log`` now runs every logged query through this pass and
flags hard errors automatically.

Rules (see :mod:`repro.analysis.framework` for the severity policy):

========================  ========  =====================================================
rule                      severity  fires on
========================  ========  =====================================================
``parse-error``           ERROR     stored text that does not parse
``unknown-table``         ERROR     relation not in the schema
``unknown-column``        ERROR     column not in any visible binding
``ambiguous-column``      ERROR     unqualified column in several bindings
``cartesian-join``        ERROR     FROM tables with no connecting predicate
``aggregate-misuse``      ERROR     aggregate in WHERE, nested aggregates
``ungrouped-column``      WARNING   selected column absent from GROUP BY
``type-mismatch``         WARNING   comparison forcing an implicit cast
``non-sargable``          WARNING   function-wrapped indexed column in a comparison
``constant-predicate``    WARNING   always-true/always-false conjunct
``select-star``           INFO      ``SELECT *`` in a stored query
========================  ========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParseError, TokenizeError
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    DeleteStatement,
    ExistsSubquery,
    Expression,
    FromItem,
    FunctionCall,
    InList,
    InSubquery,
    InsertStatement,
    Join,
    Literal,
    ScalarSubquery,
    SelectStatement,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
    UpdateStatement,
    iter_expressions,
)
from repro.sql.formatter import format_expression
from repro.sql.parser import parse
from repro.storage.types import DataType, compare_values

from repro.analysis.framework import Diagnostic, Rule, Severity

PARSE_ERROR = Rule("parse-error", Severity.ERROR, "statement does not parse")
UNKNOWN_TABLE = Rule("unknown-table", Severity.ERROR, "relation not in the schema")
UNKNOWN_COLUMN = Rule("unknown-column", Severity.ERROR, "column not in any visible binding")
AMBIGUOUS_COLUMN = Rule(
    "ambiguous-column", Severity.ERROR, "unqualified column matches several bindings"
)
CARTESIAN_JOIN = Rule(
    "cartesian-join", Severity.ERROR, "FROM tables with no connecting join predicate"
)
AGGREGATE_MISUSE = Rule(
    "aggregate-misuse", Severity.ERROR, "aggregate where aggregates cannot appear"
)
UNGROUPED_COLUMN = Rule(
    "ungrouped-column", Severity.WARNING, "selected column not in GROUP BY"
)
TYPE_MISMATCH = Rule(
    "type-mismatch", Severity.WARNING, "comparison forces an implicit cast"
)
NON_SARGABLE = Rule(
    "non-sargable", Severity.WARNING, "function-wrapped indexed column defeats the index"
)
CONSTANT_PREDICATE = Rule(
    "constant-predicate", Severity.WARNING, "predicate is constant"
)
SELECT_STAR = Rule("select-star", Severity.INFO, "SELECT * in a stored query")

RULES: tuple[Rule, ...] = (
    PARSE_ERROR,
    UNKNOWN_TABLE,
    UNKNOWN_COLUMN,
    AMBIGUOUS_COLUMN,
    CARTESIAN_JOIN,
    AGGREGATE_MISUSE,
    UNGROUPED_COLUMN,
    TYPE_MISMATCH,
    NON_SARGABLE,
    CONSTANT_PREDICATE,
    SELECT_STAR,
)

_COMPARISON_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}


class SchemaView:
    """Uniform schema access for the linter.

    Wraps either a full :class:`~repro.storage.catalog.Catalog` (plus an
    optional table provider for index lookups) or a plain
    ``{table: iterable-of-columns}`` mapping.  Lookups are case-insensitive,
    matching the engine's own name resolution.
    """

    def __init__(self, catalog=None, schema_columns=None, table_provider=None):
        if catalog is None and schema_columns is None:
            raise ValueError("SchemaView needs a catalog or a schema_columns mapping")
        self._catalog = catalog
        self._provider = table_provider
        if schema_columns is not None:
            self._columns = {
                str(table).lower(): {str(column).lower() for column in columns}
                for table, columns in schema_columns.items()
            }
        else:
            self._columns = {
                name.lower(): {
                    column.lower() for column in catalog.schema(name).column_names
                }
                for name in catalog.table_names()
            }

    @classmethod
    def from_database(cls, database) -> "SchemaView":
        """Full-fidelity view over a live engine (types and indexes)."""
        return cls(catalog=database.catalog, table_provider=database)

    def has_table(self, name: str) -> bool:
        return name.lower() in self._columns

    def table_names(self) -> list[str]:
        return sorted(self._columns)

    def columns(self, table: str) -> set[str]:
        return self._columns.get(table.lower(), set())

    def has_column(self, table: str, column: str) -> bool:
        return column.lower() in self._columns.get(table.lower(), set())

    def column_type(self, table: str, column: str) -> DataType | None:
        """The column's declared type, or None when only names are known."""
        if self._catalog is None or not self.has_column(table, column):
            return None
        return self._catalog.schema(table).column(column).data_type

    def indexed_columns(self, table: str) -> set[str]:
        """Lower-cased columns of ``table`` with any index, or empty when the
        view has no table provider to ask."""
        if self._provider is None or not self.has_table(table):
            return set()
        live = self._provider.table(table)
        return {
            definition.column.lower() for definition in live.index_definitions()
        }


@dataclass
class _Binding:
    """One FROM-clause binding while linting a SELECT."""

    name: str  # alias or table name, original case
    table: str | None  # underlying base table, None for subqueries
    columns: set[str] | None  # lower-cased; None = unknown (skip column checks)

    def has_column(self, column: str) -> bool | None:
        if self.columns is None:
            return None
        return column.lower() in self.columns


@dataclass
class _Scope:
    """A lexical scope: the bindings of one SELECT, chained to its outer query."""

    bindings: list[_Binding] = field(default_factory=list)
    parent: "_Scope | None" = None

    def resolve(self, ref: ColumnRef) -> tuple[str, list[_Binding]]:
        """Classify a reference: ("ok"|"unknown"|"ambiguous"|"opaque", matches).

        "opaque" means the reference lands in a binding whose columns are
        unknown (an unresolvable subquery output) — the linter stays quiet.
        """
        scope: _Scope | None = self
        while scope is not None:
            if ref.table is not None:
                for binding in scope.bindings:
                    if binding.name.lower() == ref.table.lower():
                        known = binding.has_column(ref.name)
                        if known is None:
                            return "opaque", [binding]
                        return ("ok" if known else "unknown"), [binding]
            else:
                matches, opaque = [], False
                for binding in scope.bindings:
                    known = binding.has_column(ref.name)
                    if known:
                        matches.append(binding)
                    elif known is None:
                        opaque = True
                if len(matches) > 1:
                    return "ambiguous", matches
                if matches:
                    return "ok", matches
                if opaque:
                    return "opaque", []
            scope = scope.parent
        return "unknown", []


class SqlLinter:
    """Schema-aware linter over parsed statements (or raw SQL text)."""

    def __init__(self, schema: SchemaView):
        self._schema = schema

    # -- entry points ---------------------------------------------------------

    def lint_sql(self, sql: str, location: str = "query") -> list[Diagnostic]:
        """Parse and lint one statement; parse failures become diagnostics."""
        try:
            statement = parse(sql)
        except (ParseError, TokenizeError) as exc:
            return [PARSE_ERROR.at(location, str(exc))]
        return self.lint(statement, location)

    def lint(self, statement, location: str = "query") -> list[Diagnostic]:
        """Lint a parsed statement.  DDL is accepted and passes vacuously."""
        diagnostics: list[Diagnostic] = []
        if isinstance(statement, SelectStatement):
            self._lint_select(statement, location, None, diagnostics)
        elif isinstance(statement, InsertStatement):
            self._lint_insert(statement, location, diagnostics)
        elif isinstance(statement, (UpdateStatement, DeleteStatement)):
            self._lint_dml(statement, location, diagnostics)
        return diagnostics

    # -- SELECT ---------------------------------------------------------------

    def _lint_select(
        self,
        statement: SelectStatement,
        location: str,
        outer: _Scope | None,
        diagnostics: list[Diagnostic],
    ) -> None:
        scope = _Scope(parent=outer)
        join_edges: list[tuple[str, str]] = []
        for item in statement.from_items:
            self._bind_from_item(item, location, scope, join_edges, diagnostics)

        expressions: list[tuple[Expression, str]] = []
        for select_item in statement.select_items:
            expressions.append((select_item.expression, "select list"))
        if statement.where is not None:
            expressions.append((statement.where, "WHERE"))
        for expr in statement.group_by:
            expressions.append((expr, "GROUP BY"))
        if statement.having is not None:
            expressions.append((statement.having, "HAVING"))
        for order_item in statement.order_by:
            expressions.append((order_item.expression, "ORDER BY"))

        select_aliases = {
            (item.alias or "").lower() for item in statement.select_items if item.alias
        }
        for expr, clause in expressions:
            allow_aliases = select_aliases if clause == "ORDER BY" else frozenset()
            self._check_expression(expr, clause, location, scope, allow_aliases, diagnostics)

        self._check_cartesian(statement, scope, join_edges, location, diagnostics)
        self._check_aggregates(statement, location, diagnostics)
        self._check_select_star(statement, location, diagnostics)
        if statement.where is not None:
            self._check_where_conjuncts(statement.where, location, scope, diagnostics)

    def _bind_from_item(
        self,
        item: FromItem,
        location: str,
        scope: _Scope,
        join_edges: list[tuple[str, str]],
        diagnostics: list[Diagnostic],
    ) -> None:
        if isinstance(item, TableRef):
            if not self._schema.has_table(item.name):
                diagnostics.append(
                    UNKNOWN_TABLE.at(location, f"unknown relation {item.name!r}")
                )
                scope.bindings.append(_Binding(item.binding, None, None))
                return
            scope.bindings.append(
                _Binding(item.binding, item.name, self._schema.columns(item.name))
            )
        elif isinstance(item, SubqueryRef):
            self._lint_select(item.subquery, location, scope, diagnostics)
            scope.bindings.append(
                _Binding(item.binding, None, _subquery_columns(item.subquery, self._schema))
            )
        elif isinstance(item, Join):
            self._bind_from_item(item.left, location, scope, join_edges, diagnostics)
            self._bind_from_item(item.right, location, scope, join_edges, diagnostics)
            if item.condition is not None:
                self._check_expression(
                    item.condition, "JOIN condition", location, scope, frozenset(), diagnostics
                )
                join_edges.extend(_edges_of(item.condition, scope))

    def _check_expression(
        self,
        expr: Expression,
        clause: str,
        location: str,
        scope: _Scope,
        allowed_aliases: frozenset[str] | set[str],
        diagnostics: list[Diagnostic],
    ) -> None:
        """Resolve every column reference and apply the expression-local rules."""
        for node in iter_expressions(expr):
            if isinstance(node, ColumnRef):
                if node.table is None and node.name.lower() in allowed_aliases:
                    continue
                status, matches = scope.resolve(node)
                if status == "unknown":
                    diagnostics.append(
                        UNKNOWN_COLUMN.at(
                            location,
                            f"unknown column {format_expression(node)} in {clause}",
                        )
                    )
                elif status == "ambiguous":
                    names = ", ".join(sorted(b.name for b in matches))
                    diagnostics.append(
                        AMBIGUOUS_COLUMN.at(
                            location,
                            f"column {node.name!r} in {clause} is ambiguous "
                            f"(bound by {names})",
                        )
                    )
            elif isinstance(node, BinaryOp) and node.op in _COMPARISON_OPS:
                self._check_comparison(node, clause, location, scope, diagnostics)
            elif isinstance(node, Between):
                self._check_between(node, clause, location, scope, diagnostics)
            elif isinstance(node, (InSubquery, ExistsSubquery, ScalarSubquery)):
                self._lint_select(node.subquery, location, scope, diagnostics)

    # -- typed-comparison rules ----------------------------------------------

    def _resolved_column_type(self, expr: Expression, scope: _Scope) -> DataType | None:
        if not isinstance(expr, ColumnRef):
            return None
        status, matches = scope.resolve(expr)
        if status != "ok" or not matches or matches[0].table is None:
            return None
        return self._schema.column_type(matches[0].table, expr.name)

    def _check_comparison(
        self,
        node: BinaryOp,
        clause: str,
        location: str,
        scope: _Scope,
        diagnostics: list[Diagnostic],
    ) -> None:
        for left, right in ((node.left, node.right), (node.right, node.left)):
            column_type = self._resolved_column_type(left, scope)
            if column_type is None:
                continue
            other = _value_kind(right, scope, self)
            if other is not None and _kinds_clash(column_type, other):
                diagnostics.append(
                    TYPE_MISMATCH.at(
                        location,
                        f"{format_expression(node)} in {clause} compares "
                        f"{column_type.value} to {other} (implicit cast)",
                    )
                )
                break
        self._check_sargability(node.left, node.right, node, clause, location, scope, diagnostics)
        self._check_sargability(node.right, node.left, node, clause, location, scope, diagnostics)

    def _check_between(
        self,
        node: Between,
        clause: str,
        location: str,
        scope: _Scope,
        diagnostics: list[Diagnostic],
    ) -> None:
        column_type = self._resolved_column_type(node.expr, scope)
        if column_type is None:
            return
        for bound in (node.low, node.high):
            kind = _value_kind(bound, scope, self)
            if kind is not None and _kinds_clash(column_type, kind):
                diagnostics.append(
                    TYPE_MISMATCH.at(
                        location,
                        f"{format_expression(node)} in {clause} compares "
                        f"{column_type.value} to {kind} (implicit cast)",
                    )
                )
                return

    def _check_sargability(
        self,
        side: Expression,
        other: Expression,
        node: BinaryOp,
        clause: str,
        location: str,
        scope: _Scope,
        diagnostics: list[Diagnostic],
    ) -> None:
        """``WHERE f(indexed_col) = constant`` cannot use the index."""
        if not isinstance(side, FunctionCall) or side.is_aggregate:
            return
        inner = [arg for arg in side.args if isinstance(arg, ColumnRef)]
        if len(inner) != 1 or any(isinstance(n, ColumnRef) for n in iter_expressions(other)):
            return
        ref = inner[0]
        status, matches = scope.resolve(ref)
        if status != "ok" or not matches or matches[0].table is None:
            return
        if ref.name.lower() in self._schema.indexed_columns(matches[0].table):
            diagnostics.append(
                NON_SARGABLE.at(
                    location,
                    f"{format_expression(node)} in {clause} wraps indexed column "
                    f"{matches[0].table}.{ref.name} in {side.name.upper()}(); "
                    f"the index cannot be used",
                )
            )

    # -- statement-level rules ------------------------------------------------

    def _check_cartesian(
        self,
        statement: SelectStatement,
        scope: _Scope,
        join_edges: list[tuple[str, str]],
        location: str,
        diagnostics: list[Diagnostic],
    ) -> None:
        local = [b.name.lower() for b in scope.bindings]
        if len(local) < 2:
            return
        edges = list(join_edges)
        if statement.where is not None:
            for conjunct in _conjuncts(statement.where):
                edges.extend(_edges_of(conjunct, scope))
        components = {name: name for name in local}

        def find(name: str) -> str:
            while components[name] != name:
                components[name] = components[components[name]]
                name = components[name]
            return name

        for a, b in edges:
            if a in components and b in components:
                components[find(a)] = find(b)
        roots = {find(name) for name in local}
        if len(roots) > 1:
            diagnostics.append(
                CARTESIAN_JOIN.at(
                    location,
                    f"{len(local)} FROM relations form {len(roots)} disconnected "
                    f"groups; the query is a cartesian product",
                )
            )

    def _check_aggregates(
        self, statement: SelectStatement, location: str, diagnostics: list[Diagnostic]
    ) -> None:
        if statement.where is not None:
            for node in iter_expressions(statement.where):
                if isinstance(node, FunctionCall) and node.is_aggregate:
                    diagnostics.append(
                        AGGREGATE_MISUSE.at(
                            location,
                            f"aggregate {format_expression(node)} in WHERE "
                            f"(use HAVING over grouped rows)",
                        )
                    )
                    break
        for item in statement.select_items:
            for node in iter_expressions(item.expression):
                if isinstance(node, FunctionCall) and node.is_aggregate:
                    if any(
                        isinstance(arg_node, FunctionCall) and arg_node.is_aggregate
                        for arg in node.args
                        for arg_node in iter_expressions(arg)
                    ):
                        diagnostics.append(
                            AGGREGATE_MISUSE.at(
                                location,
                                f"nested aggregate {format_expression(node)}",
                            )
                        )
        if statement.group_by:
            grouped = {
                format_expression(expr).lower() for expr in statement.group_by
            }
            grouped_names = {
                expr.name.lower()
                for expr in statement.group_by
                if isinstance(expr, ColumnRef)
            }
            for item in statement.select_items:
                expr = item.expression
                if not isinstance(expr, ColumnRef):
                    continue
                if format_expression(expr).lower() in grouped:
                    continue
                if expr.name.lower() in grouped_names:
                    continue
                diagnostics.append(
                    UNGROUPED_COLUMN.at(
                        location,
                        f"column {format_expression(expr)} is selected but not in "
                        f"GROUP BY (an arbitrary row represents each group)",
                    )
                )

    def _check_select_star(
        self, statement: SelectStatement, location: str, diagnostics: list[Diagnostic]
    ) -> None:
        for item in statement.select_items:
            if isinstance(item.expression, Star):
                diagnostics.append(
                    SELECT_STAR.at(
                        location,
                        "SELECT * in a stored query breaks when the schema evolves; "
                        "name the columns",
                    )
                )
                return

    def _check_where_conjuncts(
        self,
        where: Expression,
        location: str,
        scope: _Scope,
        diagnostics: list[Diagnostic],
    ) -> None:
        for conjunct in _conjuncts(where):
            verdict = _constant_verdict(conjunct)
            if verdict is None:
                continue
            diagnostics.append(
                CONSTANT_PREDICATE.at(
                    location,
                    f"predicate {format_expression(conjunct)} is {verdict}",
                )
            )

    # -- DML ------------------------------------------------------------------

    def _lint_insert(
        self, statement: InsertStatement, location: str, diagnostics: list[Diagnostic]
    ) -> None:
        if not self._schema.has_table(statement.table):
            diagnostics.append(
                UNKNOWN_TABLE.at(location, f"unknown relation {statement.table!r}")
            )
            return
        for column in statement.columns:
            if not self._schema.has_column(statement.table, column):
                diagnostics.append(
                    UNKNOWN_COLUMN.at(
                        location,
                        f"unknown column {statement.table}.{column} in INSERT",
                    )
                )
        if statement.select is not None:
            self._lint_select(statement.select, location, None, diagnostics)

    def _lint_dml(
        self,
        statement: UpdateStatement | DeleteStatement,
        location: str,
        diagnostics: list[Diagnostic],
    ) -> None:
        if not self._schema.has_table(statement.table):
            diagnostics.append(
                UNKNOWN_TABLE.at(location, f"unknown relation {statement.table!r}")
            )
            return
        scope = _Scope(
            bindings=[
                _Binding(
                    statement.table,
                    statement.table,
                    self._schema.columns(statement.table),
                )
            ]
        )
        if isinstance(statement, UpdateStatement):
            for column, expr in statement.assignments:
                if not self._schema.has_column(statement.table, column):
                    diagnostics.append(
                        UNKNOWN_COLUMN.at(
                            location,
                            f"unknown column {statement.table}.{column} in SET",
                        )
                    )
                self._check_expression(expr, "SET", location, scope, frozenset(), diagnostics)
        if statement.where is not None:
            self._check_expression(
                statement.where, "WHERE", location, scope, frozenset(), diagnostics
            )
            self._check_where_conjuncts(statement.where, location, scope, diagnostics)


# -- helpers -------------------------------------------------------------------


def _conjuncts(expr: Expression) -> list[Expression]:
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _edges_of(conjunct: Expression, scope: _Scope) -> list[tuple[str, str]]:
    """Binding pairs a conjunct connects (any predicate over two bindings)."""
    touched: set[str] = set()
    for node in iter_expressions(conjunct):
        if not isinstance(node, ColumnRef):
            continue
        if node.table is not None:
            touched.add(node.table.lower())
            continue
        status, matches = scope.resolve(node)
        if status == "ok" and matches:
            touched.add(matches[0].name.lower())
    ordered = sorted(touched)
    return [(a, b) for i, a in enumerate(ordered) for b in ordered[i + 1:]]


def _subquery_columns(subquery: SelectStatement, schema: SchemaView) -> set[str] | None:
    """Output column names of a derived table, or None when not derivable."""
    columns: set[str] = set()
    for item in subquery.select_items:
        if item.alias:
            columns.add(item.alias.lower())
        elif isinstance(item.expression, ColumnRef):
            columns.add(item.expression.name.lower())
        elif isinstance(item.expression, Star):
            for table in subquery.from_items:
                if isinstance(table, TableRef) and schema.has_table(table.name):
                    columns |= schema.columns(table.name)
                else:
                    return None
        else:
            return None
    return columns


def _value_kind(expr: Expression, scope: _Scope, linter: SqlLinter) -> str | None:
    """Coarse type of the other comparison side: "numeric", "text", "boolean"."""
    if isinstance(expr, Literal):
        value = expr.value
        if value is None:
            return None
        if isinstance(value, bool):
            return "boolean"
        if isinstance(value, (int, float)):
            return "numeric"
        if isinstance(value, str):
            return "text"
        return None
    column_type = linter._resolved_column_type(expr, scope)
    if column_type is None:
        return None
    if column_type.is_numeric:
        return "numeric"
    if column_type is DataType.BOOLEAN:
        return "boolean"
    return "text"


def _kinds_clash(column_type: DataType, other: str) -> bool:
    if column_type.is_numeric:
        return other != "numeric"
    if column_type is DataType.BOOLEAN:
        return other != "boolean"
    return other != "text"  # TEXT column


def _constant_verdict(conjunct: Expression) -> str | None:
    """"always true"/"always false"/"constant" for column-free predicates."""
    for node in iter_expressions(conjunct):
        if isinstance(node, (ColumnRef, InSubquery, ExistsSubquery, ScalarSubquery)):
            return None
        if isinstance(node, (FunctionCall, CaseExpression, InList, UnaryOp)):
            return None
    if isinstance(conjunct, BinaryOp) and conjunct.op in _COMPARISON_OPS:
        left, right = conjunct.left, conjunct.right
        if isinstance(left, Literal) and isinstance(right, Literal):
            if left.value is None or right.value is None:
                return None
            try:
                ordering = compare_values(left.value, right.value)
            except TypeError:
                return "constant"
            outcome = {
                "=": ordering == 0,
                "!=": ordering != 0,
                "<>": ordering != 0,
                "<": ordering < 0,
                "<=": ordering <= 0,
                ">": ordering > 0,
                ">=": ordering >= 0,
            }[conjunct.op]
            return "always true" if outcome else "always false"
        return None
    if isinstance(conjunct, Literal) and isinstance(conjunct.value, bool):
        return "always true" if conjunct.value else "always false"
    return None
