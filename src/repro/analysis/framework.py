"""Shared diagnostic framework of the static-analysis subsystem.

All three analysis passes — the SQL semantic linter
(:mod:`repro.analysis.sql_lint`), the plan-invariant verifier
(:mod:`repro.analysis.plan_verify`), and the engine hazard lint
(:mod:`repro.analysis.hazard_lint`) — speak the same vocabulary:

* a :class:`Rule` names one class of problem and carries its default
  :class:`Severity` and a one-line summary,
* a :class:`Diagnostic` is one concrete finding of a rule at a location
  (a source file and line, a logged query id, or a plan-operator label),
* a :class:`DiagnosticReport` collects findings across a whole run and
  answers the only question CI asks: *are there ERROR-severity findings?*

Severity policy: ``ERROR`` means the subject is wrong — the query cannot
produce its intended result, the plan violates an executor contract, or the
engine code breaks an invariant the rest of the system relies on.  CI fails
on ERROR.  ``WARNING`` marks working-but-hazardous constructs (implicit
casts, non-sargable predicates, broad exception handlers that still
re-raise); ``INFO`` is advisory style (``SELECT *`` in a stored query).
Neither fails the build, and the SQL linter never marks a logged query
invalid for anything below ERROR.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons read naturally."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "ERROR", not "Severity.ERROR"
        return self.name


@dataclass(frozen=True)
class Rule:
    """One named class of problem an analysis pass can report.

    ``name`` is the stable kebab-case identifier diagnostics carry (and the
    handle for suppressing or testing the rule); ``severity`` is the default
    severity of its findings — an individual :class:`Diagnostic` may override
    it (e.g. the broad-except rule reports ERROR inside ``storage/`` but only
    WARNING elsewhere).
    """

    name: str
    severity: Severity
    summary: str

    def at(self, location: str, message: str, severity: Severity | None = None) -> "Diagnostic":
        """Create a finding of this rule at ``location``."""
        return Diagnostic(
            rule=self.name,
            severity=self.severity if severity is None else severity,
            location=location,
            message=message,
        )


@dataclass(frozen=True)
class Diagnostic:
    """One concrete finding: a rule fired at a location."""

    rule: str
    severity: Severity
    location: str  # "path.py:12", "qid 7", or an operator label
    message: str

    def format(self) -> str:
        return f"{self.location}: {self.severity} [{self.rule}] {self.message}"

    def __str__(self) -> str:
        return self.format()


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics from one analysis run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def counts(self) -> dict[str, int]:
        """``{"ERROR": n, "WARNING": n, "INFO": n}`` — always all three keys."""
        tally = {severity.name: 0 for severity in sorted(Severity, reverse=True)}
        for diagnostic in self.diagnostics:
            tally[diagnostic.severity.name] += 1
        return tally

    def render(self) -> str:
        """Human-readable listing, most severe first, stable within a severity."""
        ordered = sorted(
            self.diagnostics, key=lambda d: (-int(d.severity), d.location, d.rule)
        )
        lines = [diagnostic.format() for diagnostic in ordered]
        summary = ", ".join(f"{count} {name}" for name, count in self.counts().items())
        lines.append(f"-- {len(self.diagnostics)} diagnostics ({summary})")
        return "\n".join(lines)
