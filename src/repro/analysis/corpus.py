"""Generated plan corpus for the plan-invariant verifier.

CI does not get to hand-pick friendly plans: this module regenerates the
Figure-1 workload for every domain, plans each distinct statement under
several engine configurations (default, parallel fan-out, index-less), and
runs :class:`~repro.analysis.plan_verify.PlanVerifier` over every plan the
planner emits — SELECTs through ``plan_select``, plus synthesized
UPDATE/DELETE shapes per table through the DML planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.ast_nodes import DeleteStatement, SelectStatement, UpdateStatement
from repro.sql.canonicalize import parameterize_statement
from repro.sql.parser import parse
from repro.storage.exec_settings import ExecutionSettings
from repro.storage.planner import Planner
from repro.workloads.generator import QueryLogGenerator, WorkloadConfig
from repro.workloads.schemas import build_database

from repro.analysis.framework import DiagnosticReport
from repro.analysis.plan_verify import PlanVerifier

DOMAINS = ("limnology", "sky_survey", "web_analytics")

#: Engine configurations each statement is planned under.  The parallel
#: variant forces ``ParallelSeqScan`` into the corpus; the index-less variant
#: exercises the pure SeqScan/HashJoin shapes.
SETTINGS_VARIANTS: dict[str, ExecutionSettings | None] = {
    "default": None,
    "parallel": ExecutionSettings(parallel_workers=4, parallel_threshold=1),
}


@dataclass
class CorpusResult:
    """Outcome of one corpus run: counts plus the combined diagnostics."""

    plans_verified: int = 0
    statements: int = 0
    report: DiagnosticReport = field(default_factory=DiagnosticReport)

    def summary(self) -> str:
        counts = self.report.counts()
        severities = ", ".join(f"{count} {name}" for name, count in counts.items())
        return (
            f"verified {self.plans_verified} plans from {self.statements} "
            f"statements ({severities})"
        )


def domain_statements(domain: str, sessions: int = 60, seed: int = 42) -> list[str]:
    """Distinct workload SQL texts for one domain (deterministic)."""
    config = WorkloadConfig(domain=domain, num_sessions=sessions, seed=seed)
    seen: dict[str, None] = {}
    for query in QueryLogGenerator(config).generate():
        seen.setdefault(query.sql, None)
    return list(seen)


def dml_statements(database) -> list[str]:
    """Synthesized UPDATE/DELETE shapes per table: equality, range, and
    full-table predicates — the access paths the DML planner chooses among."""
    statements: list[str] = []
    for name in sorted(database.table_names()):
        schema = database.table(name).schema
        columns = list(schema.columns)
        if not columns:
            continue
        target = columns[0]
        numeric = next((c for c in columns if c.data_type.is_numeric), None)
        value = "0" if target.data_type.is_numeric else "'x'"
        statements.append(f"DELETE FROM {name} WHERE {target.name} = {value}")
        if numeric is not None:
            statements.append(
                f"UPDATE {name} SET {numeric.name} = 1 WHERE {numeric.name} > 0"
            )
        statements.append(f"UPDATE {name} SET {target.name} = {value}")
    return statements


def verify_corpus(
    domains=DOMAINS, sessions: int = 60, seed: int = 42, scale: int = 1
) -> CorpusResult:
    """Plan and verify the whole generated corpus; parameterized *and* plain
    statement forms are both covered (the parameterized form is what the plan
    cache re-binds)."""
    result = CorpusResult()
    verifier = PlanVerifier()
    for domain in domains:
        sql_texts = domain_statements(domain, sessions=sessions, seed=seed)
        for label, settings in SETTINGS_VARIANTS.items():
            database = build_database(domain, scale=scale, exec_settings=settings)
            sql_texts_all = sql_texts + dml_statements(database)
            for use_indexes in (True, False):
                for sql in sql_texts_all:
                    statement = parse(sql)
                    for variant in _statement_variants(statement):
                        # Fresh planner per plan: ``rebind_unsafe`` is
                        # planner-instance state, exactly as Database uses it.
                        plan = _plan(Planner(database, use_indexes=use_indexes), variant)
                        if plan is None:
                            continue
                        result.statements += 1
                        result.plans_verified += 1
                        for diagnostic in verifier.verify(plan):
                            result.report.add(
                                type(diagnostic)(
                                    rule=diagnostic.rule,
                                    severity=diagnostic.severity,
                                    location=(
                                        f"{domain}/{label}"
                                        f"{'' if use_indexes else '/no-index'}: "
                                        f"{diagnostic.location}"
                                    ),
                                    message=f"{diagnostic.message} [sql: {sql}]",
                                )
                            )
    return result


def _statement_variants(statement):
    yield statement
    parameterized, parameters = parameterize_statement(statement)
    if parameters:
        yield parameterized


def _plan(planner: Planner, statement):
    if isinstance(statement, SelectStatement):
        return planner.plan_select(statement)
    if isinstance(statement, UpdateStatement):
        return planner.plan_update(statement)
    if isinstance(statement, DeleteStatement):
        return planner.plan_delete(statement)
    return None
