"""Command-line front end: ``python -m repro.analysis``.

Subcommands:

* ``lint [paths...]`` — run the engine hazard lint
  (:mod:`repro.analysis.hazard_lint`) over python sources
  (default: ``src/repro``).
* ``verify-plans`` — regenerate the workload plan corpus and run the
  plan-invariant verifier (:mod:`repro.analysis.plan_verify`) over every
  plan (see :mod:`repro.analysis.corpus`).
* ``lint-sql`` — lint one SQL statement against a workload domain's schema.
* ``lint-metrics`` — build a small populated CQMS, render its metrics in the
  Prometheus text exposition format, and lint the document
  (:mod:`repro.analysis.exposition_lint`): malformed lines, duplicate or
  unlabelled series, naming-scheme violations, and a minimum-series floor
  asserting the telemetry surface actually exists.

Exit status is 1 when any ERROR-severity diagnostic is produced — the CI
``lint-and-verify`` step is exactly these commands.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.framework import DiagnosticReport
from repro.analysis.hazard_lint import lint_paths


def _finish(report: DiagnosticReport, quiet_clean: str) -> int:
    if len(report):
        print(report.render())
    else:
        print(quiet_clean)
    return 1 if report.has_errors else 0


def _cmd_lint(args) -> int:
    paths = args.paths or ["src/repro"]
    report = lint_paths(paths)
    return _finish(report, f"hazard lint clean over {', '.join(map(str, paths))}")


def _cmd_verify_plans(args) -> int:
    from repro.analysis.corpus import DOMAINS, verify_corpus

    domains = args.domains or list(DOMAINS)
    result = verify_corpus(domains=domains, sessions=args.sessions, seed=args.seed)
    print(result.summary())
    if len(result.report):
        print(result.report.render())
    return 1 if result.report.has_errors else 0


def _cmd_lint_sql(args) -> int:
    from repro.analysis.sql_lint import SchemaView, SqlLinter
    from repro.workloads.schemas import build_database

    database = build_database(args.domain)
    linter = SqlLinter(SchemaView.from_database(database))
    report = DiagnosticReport(diagnostics=linter.lint_sql(args.sql))
    return _finish(report, f"statement is clean against the {args.domain} schema")


def _cmd_lint_metrics(args) -> int:
    from repro.analysis.exposition_lint import lint_live_engine

    report, series = lint_live_engine(min_series=args.min_series)
    print(f"exposition: {series} distinct series rendered (floor {args.min_series})")
    return _finish(report, "exposition format clean")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis over the engine, its plans, and stored SQL.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    lint = commands.add_parser("lint", help="engine hazard lint over python sources")
    lint.add_argument("paths", nargs="*", help="files or directories (default: src/repro)")
    lint.set_defaults(run=_cmd_lint)

    verify = commands.add_parser(
        "verify-plans", help="verify every plan of the generated workload corpus"
    )
    verify.add_argument("--domains", nargs="*", help="workload domains (default: all)")
    verify.add_argument("--sessions", type=int, default=60)
    verify.add_argument("--seed", type=int, default=42)
    verify.set_defaults(run=_cmd_verify_plans)

    lint_sql = commands.add_parser(
        "lint-sql", help="lint one SQL statement against a domain schema"
    )
    lint_sql.add_argument("sql")
    lint_sql.add_argument("--domain", default="limnology")
    lint_sql.set_defaults(run=_cmd_lint_sql)

    lint_metrics = commands.add_parser(
        "lint-metrics", help="lint the live engine's Prometheus exposition output"
    )
    lint_metrics.add_argument(
        "--min-series",
        type=int,
        default=25,
        help="minimum distinct series the engine must expose (default: 25)",
    )
    lint_metrics.set_defaults(run=_cmd_lint_metrics)

    args = parser.parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
