"""Columnar batches: typed per-column buffers over slotted heap rows.

A :class:`ColumnBatch` is the columnar counterpart of the engine's
``RowBatch`` (``list[{binding: row}]``): one span of heap rows held as a
list of *bare* stored row dicts plus lazily extracted per-column buffers —
``array('q')`` / ``array('d')`` for INT/FLOAT columns (with a parallel
validity bitmap when the column contains NULLs) and plain Python lists for
everything else.  The per-row ``{binding: row}`` wrapper dict is never
materialized on the columnar path; :meth:`ColumnBatch.to_row_batch` builds
it only at the boundary where a row-at-a-time consumer (join, subquery,
uncompiled predicate) takes over, reusing the stored row dicts so the two
paths see identical objects.

Filtering never copies a batch.  A kernel (see
:mod:`repro.storage.kernels`) returns a *selection vector* — the surviving
row positions — and :meth:`ColumnBatch.narrowed` wraps it in a new batch
that shares the row list and the extracted-column cache with its parent.
That sharing is what the ``columnar-mutation`` hazard-lint rule protects:
a kernel must never mutate a batch it did not allocate, because sibling
selections alias the same buffers.
"""

from __future__ import annotations

from array import array
from itertools import repeat
from operator import is_not

from repro.storage.types import DataType

#: ``Column.kind`` codes: typed int/float buffers, or a plain object list.
KIND_INT = "q"
KIND_FLOAT = "d"
KIND_OBJECT = "o"

_TYPED_KINDS = {DataType.INTEGER: KIND_INT, DataType.FLOAT: KIND_FLOAT}


class Column:
    """One extracted column: a typed buffer (or object list) plus validity.

    * ``kind`` — :data:`KIND_INT` / :data:`KIND_FLOAT` (``data`` is an
      ``array`` of that typecode) or :data:`KIND_OBJECT` (``data`` is a
      plain list holding the stored values, Nones included).
    * ``validity`` — for typed kinds only: a ``bytearray`` with 1 at the
      positions holding real values and 0 at NULLs (NULL slots hold 0 in
      ``data``), or None when the column has no NULLs at all — the common
      case, which lets kernels skip the validity test entirely.
    """

    __slots__ = ("kind", "dtype", "data", "validity", "_values")

    def __init__(self, kind, dtype, data, validity=None, values=None):
        self.kind = kind
        self.dtype = dtype
        self.data = data
        self.validity = validity
        self._values = data if kind == KIND_OBJECT else values

    def __len__(self) -> int:
        return len(self.data)

    def values(self) -> list:
        """The column as a plain Python list (None at NULL positions).

        Memoized; for a dense typed column this is one C-speed
        ``array.tolist()`` call, which is what makes projection gather and
        the fallback comparison loops cheap.
        """
        if self._values is None:
            if self.validity is None:
                self._values = self.data.tolist()
            else:
                self._values = [
                    value if ok else None
                    for value, ok in zip(self.data.tolist(), self.validity)
                ]
        return self._values


def _extract(rows: list[dict], key: str, dtype: DataType) -> Column:
    """Build one :class:`Column` from the batch's stored row dicts.

    INT/FLOAT columns land in typed arrays; anything the typecode cannot
    hold (a NULL-only overflow: Python ints beyond 64 bits) falls back to
    the object representation rather than failing — the kernels treat the
    two identically through :meth:`Column.values`.
    """
    raw = [row[key] for row in rows]
    code = _TYPED_KINDS.get(dtype)
    if code is None:
        return Column(KIND_OBJECT, dtype, raw)
    try:
        if None in raw:
            data = array(code, [0 if value is None else value for value in raw])
            # bool subclasses int, so mapping C-level ``is not None`` straight
            # into the bytearray skips a per-element Python genexpr.
            validity = bytearray(map(is_not, raw, repeat(None)))
            return Column(code, dtype, data, validity, values=raw)
        return Column(code, dtype, array(code, raw))
    except (OverflowError, TypeError, ValueError):
        return Column(KIND_OBJECT, dtype, raw)


class ColumnBatch:
    """One batch of heap rows in columnar form.

    ``rows`` are the *stored* row dicts straight off the slotted pages
    (never copied, never mutated); ``selection`` is either None (every row
    is live) or a list of live positions into ``rows`` in ascending order.
    Columns are extracted lazily on first access and cached in a dict that
    :meth:`narrowed` shares across selections of the same span, so a filter
    chain extracts each referenced column exactly once per batch.
    """

    __slots__ = ("binding", "schema", "rows", "selection", "_columns")

    def __init__(self, binding, schema, rows, selection=None, columns=None):
        self.binding = binding
        self.schema = schema
        self.rows = rows
        self.selection = selection
        self._columns = {} if columns is None else columns

    def __len__(self) -> int:
        if self.selection is None:
            return len(self.rows)
        return len(self.selection)

    def column(self, key: str) -> Column:
        """The extracted column for row-dict key ``key`` (full span, not
        selection-filtered — kernels index it through the selection)."""
        column = self._columns.get(key)
        if column is None:
            dtype = self.schema.column(key).data_type
            column = _extract(self.rows, key, dtype)
            self._columns[key] = column
        return column

    def narrowed(self, selection: list[int]) -> "ColumnBatch":
        """A new batch over the same rows restricted to ``selection``.

        Shares the row list and the column cache — this is the only legal
        way for a filter kernel to produce output (see the
        ``columnar-mutation`` lint rule)."""
        return ColumnBatch(
            self.binding, self.schema, self.rows, selection, self._columns
        )

    def selected_rows(self) -> list[dict]:
        """The live stored row dicts, in row order."""
        if self.selection is None:
            return self.rows
        rows = self.rows
        return [rows[index] for index in self.selection]

    def to_row_batch(self) -> list[dict]:
        """Materialize the ``{binding: row}`` RowBatch at the columnar
        boundary — same wrapper shape, same stored row dicts, as the
        row-at-a-time scan would have produced."""
        binding = self.binding
        return [{binding: row} for row in self.selected_rows()]
