"""The page file: fixed-size checksummed frames with a free list.

The pager is the bottom of the paged storage stack
(:mod:`repro.storage.buffer_pool` sits on top of it): one ``pages.db`` file
per ``data_dir``, divided into fixed-size *frames*.  A logical page is
serialized to bytes by its owner and written as a chain of one or more
frames (large payloads overflow into continuation frames linked by a
``next`` pointer in each frame header), so callers never care about frame
granularity — they hand the pager a payload and get back the head frame
number.

Every frame carries a header ``(magic, payload_len, crc32, next_frame)``;
a chain read verifies all three, so a torn or recycled frame is detected
instead of decoded.  Frames are recycled through a free list that the
buffer pool manages with *shadow paging* discipline: a frame referenced by
the last published checkpoint is never overwritten in place — rewrites of
the same logical page go to fresh frames, and the superseded frames return
to the free list only after the next checkpoint publishes (see
:meth:`~repro.storage.buffer_pool.PageStore.publish`).  That is what makes
a crash at any byte harmless: the published checkpoint's frames are still
exactly as they were synced.
"""

from __future__ import annotations

import heapq
import os
import struct
import zlib

from repro.errors import DurabilityError

#: File name of the page file inside a database's ``data_dir``.
PAGES_FILE_NAME = "pages.db"

#: Bytes per frame (header included).  4 KiB mirrors the common device
#: page size; payloads larger than one frame chain through overflow frames.
DEFAULT_FRAME_SIZE = 4096

_HEADER = struct.Struct("<IIIQ")  # magic, payload_len, crc32, next_frame
_MAGIC = 0x50414745  # "PAGE"
#: ``next_frame`` sentinel ending a chain (frame 0 is a valid frame).
_NO_FRAME = 0xFFFFFFFFFFFFFFFF


class Pager:
    """Frame-granular access to one page file.

    The pager only knows bytes and frames; page identity, residency, and
    the shadow-paging free policy live in the buffer pool.  All methods
    are called under the buffer pool's lock, so the pager itself needs no
    locking.
    """

    def __init__(self, path: str | os.PathLike, frame_size: int = DEFAULT_FRAME_SIZE):
        if frame_size <= _HEADER.size:
            raise DurabilityError(
                f"frame_size {frame_size} leaves no payload room "
                f"(header is {_HEADER.size} bytes)"
            )
        self.path = os.fspath(path)
        self.frame_size = frame_size
        self._capacity = frame_size - _HEADER.size
        # O_CREAT without truncation: an existing file's frames may be
        # referenced by a published checkpoint.
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        self._file = os.fdopen(fd, "r+b", buffering=0)
        size = os.fstat(fd).st_size
        # Frames are written without tail padding, so the last frame of the
        # file is usually short: count it with a ceiling division.
        self._frames = (size + frame_size - 1) // frame_size
        self._free: list[int] = []  # min-heap of recyclable frame numbers
        self._free_set: set[int] = set()
        #: Frames written since the last :meth:`sync` (diagnostics).
        self.frames_written = 0
        self._closed = False

    # -- accounting -----------------------------------------------------------

    @property
    def frame_count(self) -> int:
        """Total frames the file currently holds (free ones included)."""
        return self._frames

    @property
    def free_count(self) -> int:
        return len(self._free_set)

    def restrict_free(self, used: set[int]) -> None:
        """Recovery: mark every frame outside ``used`` recyclable.

        Frames not referenced by any adopted page chain are garbage from the
        crashed run (written after the last published checkpoint) and can be
        reused immediately.  With nothing used at all the file is truncated —
        there is no checkpoint left that could reference it.
        """
        if not used:
            self._file.truncate(0)
            self._frames = 0
            self._free = []
            self._free_set = set()
            return
        self._free_set = {frame for frame in range(self._frames) if frame not in used}
        self._free = sorted(self._free_set)
        heapq.heapify(self._free)

    def release(self, frames) -> None:
        """Return ``frames`` to the free list for reuse."""
        for frame in frames:
            if frame not in self._free_set:
                self._free_set.add(frame)
                heapq.heappush(self._free, frame)

    def _allocate(self) -> int:
        if self._free:
            frame = heapq.heappop(self._free)
            self._free_set.discard(frame)
            return frame
        frame = self._frames
        self._frames += 1
        return frame

    # -- chain I/O --------------------------------------------------------------

    def write(self, payload: bytes) -> list[int]:
        """Write ``payload`` as a fresh frame chain; returns the frames used.

        The first element is the chain head the caller stores in its page
        directory.  Frames come from the free list (extending the file when
        it runs dry), which by construction never contains a frame the last
        published checkpoint references.
        """
        self._assert_open()
        chunks = [
            payload[offset : offset + self._capacity]
            for offset in range(0, len(payload), self._capacity)
        ] or [b""]
        frames = [self._allocate() for _ in chunks]
        for position, chunk in enumerate(chunks):
            next_frame = frames[position + 1] if position + 1 < len(frames) else _NO_FRAME
            header = _HEADER.pack(_MAGIC, len(chunk), zlib.crc32(chunk), next_frame)
            self._file.seek(frames[position] * self.frame_size)
            self._file.write(header + chunk)
        self.frames_written += len(frames)
        return frames

    def read(self, head: int) -> tuple[bytes, list[int]]:
        """Read the payload of the chain starting at ``head``.

        Returns ``(payload, frames)``; raises
        :class:`~repro.errors.DurabilityError` when any frame in the chain
        fails its integrity check (bad magic, short read, CRC mismatch) or
        the chain walks out of the file.
        """
        self._assert_open()
        parts: list[bytes] = []
        frames: list[int] = []
        frame = head
        while frame != _NO_FRAME:
            if frame < 0 or frame >= self._frames or frame in self._free_set:
                raise DurabilityError(
                    f"page chain in {self.path!r} failed its integrity check: "
                    f"frame {frame} is outside the file or recycled"
                )
            if frame in frames:
                raise DurabilityError(
                    f"page chain in {self.path!r} failed its integrity check: "
                    f"frame {frame} forms a cycle"
                )
            frames.append(frame)
            self._file.seek(frame * self.frame_size)
            raw = self._file.read(self.frame_size)
            if len(raw) < _HEADER.size:
                raise DurabilityError(
                    f"page frame {frame} of {self.path!r} failed its integrity "
                    f"check: truncated header"
                )
            magic, length, crc, next_frame = _HEADER.unpack_from(raw)
            chunk = raw[_HEADER.size : _HEADER.size + length]
            if magic != _MAGIC or len(chunk) != length or zlib.crc32(chunk) != crc:
                raise DurabilityError(
                    f"page frame {frame} of {self.path!r} failed its integrity "
                    f"check (bad magic, length, or checksum)"
                )
            parts.append(chunk)
            frame = next_frame
        return b"".join(parts), frames

    def walk(self, head: int) -> list[int]:
        """The verified frame list of the chain at ``head`` (payload dropped)."""
        return self.read(head)[1]

    def readonly_clone(self) -> "Pager":
        """A read-only handle on the same page file with a private descriptor.

        Built for forked read-only workers (parallel partial aggregation):
        the clone shares no file offset with the parent — each ``read``
        seeks on its own descriptor — and its file object is opened
        ``O_RDONLY``, so a stray write attempt fails loudly instead of
        corrupting frames.  Frame accounting (frame count, free set) is
        copied at clone time; the owner must not write concurrently while
        clones read, which the engine's one-statement-at-a-time execution
        guarantees.
        """
        self._assert_open()
        clone = object.__new__(Pager)
        clone.path = self.path
        clone.frame_size = self.frame_size
        clone._capacity = self._capacity
        fd = os.open(self.path, os.O_RDONLY)
        clone._file = os.fdopen(fd, "rb", buffering=0)
        clone._frames = self._frames
        clone._free = list(self._free)
        clone._free_set = set(self._free_set)
        clone.frames_written = 0
        clone._closed = False
        return clone

    # -- lifecycle -------------------------------------------------------------

    def sync(self) -> None:
        """Flush and ``fsync`` the page file (the checkpoint barrier)."""
        self._assert_open()
        self._file.flush()
        os.fsync(self._file.fileno())
        self.frames_written = 0

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._file.close()

    def _assert_open(self) -> None:
        if self._closed:
            raise DurabilityError(f"pager for {self.path!r} is closed")
