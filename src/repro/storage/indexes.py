"""Secondary indexes for heap tables.

The engine supports hash indexes (equality lookups) which are enough both for
user workloads and for the Query Storage's frequent lookups by ``qid``,
``relName``, and ``attrName`` during meta-query execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IntegrityError


@dataclass
class HashIndex:
    """A hash index mapping a column value to the set of row ids holding it."""

    name: str
    column: str
    unique: bool = False
    _buckets: dict[object, set[int]] = field(default_factory=dict, repr=False)

    def insert(self, value: object, row_id: int) -> None:
        """Register ``row_id`` under ``value``; NULLs are not indexed."""
        if value is None:
            return
        bucket = self._buckets.setdefault(value, set())
        if self.unique and bucket:
            raise IntegrityError(
                f"unique index {self.name!r} violated for value {value!r}"
            )
        bucket.add(row_id)

    def delete(self, value: object, row_id: int) -> None:
        if value is None:
            return
        bucket = self._buckets.get(value)
        if bucket is None:
            return
        bucket.discard(row_id)
        if not bucket:
            del self._buckets[value]

    def lookup(self, value: object) -> set[int]:
        """Row ids whose indexed column equals ``value`` (empty set for NULL)."""
        if value is None:
            return set()
        return set(self._buckets.get(value, set()))

    def distinct_values(self) -> int:
        return len(self._buckets)

    def clear(self) -> None:
        self._buckets.clear()
