"""Secondary indexes for heap tables.

The engine supports two index kinds:

* :class:`HashIndex` — equality lookups, enough for the Query Storage's
  frequent probes by ``qid``, ``relName``, and ``attrName`` during meta-query
  execution;
* :class:`SortedIndex` — an ordered index backed by a paged B+ tree
  (:class:`~repro.storage.bptree.BPlusTree`) whose keys follow the engine's
  total order (:func:`~repro.storage.types.sort_key`), serving range
  predicates (``ts BETWEEN …``, ``temp < 18``) and ORDER BY without sorting.
  Tree nodes page through the owning table's buffer pool, so big indexes
  spill to disk under the same ``buffer_pool_pages`` budget as the heap.

Both kinds share the ``insert`` / ``delete`` / ``lookup`` surface so
:class:`~repro.storage.table.Table` maintains them uniformly; a column may
carry one index of each kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IntegrityError
from repro.storage.bptree import DEFAULT_ORDER, BPlusTree
from repro.storage.buffer_pool import PageStore
from repro.storage.types import sort_key


@dataclass
class HashIndex:
    """A hash index mapping a column value to the set of row ids holding it."""

    name: str
    column: str
    unique: bool = False
    _buckets: dict[object, set[int]] = field(default_factory=dict, repr=False)

    kind = "hash"

    def insert(self, value: object, row_id: int) -> None:
        """Register ``row_id`` under ``value``; NULLs are not indexed."""
        if value is None:
            return
        bucket = self._buckets.setdefault(value, set())
        if self.unique and bucket:
            raise IntegrityError(
                f"unique index {self.name!r} violated for value {value!r}"
            )
        bucket.add(row_id)

    def delete(self, value: object, row_id: int) -> None:
        if value is None:
            return
        bucket = self._buckets.get(value)
        if bucket is None:
            return
        bucket.discard(row_id)
        if not bucket:
            del self._buckets[value]

    def lookup(self, value: object) -> set[int]:
        """Row ids whose indexed column equals ``value`` (empty set for NULL)."""
        if value is None:
            return set()
        return set(self._buckets.get(value, set()))

    def distinct_values(self) -> int:
        return len(self._buckets)

    def clear(self) -> None:
        self._buckets.clear()

    def drop(self) -> None:
        """Release the index's storage (it owns no pages; just forget)."""
        self._buckets.clear()


class SortedIndex:
    """An ordered index: a paged B+ tree plus a NULL-row side set.

    Keys are :func:`~repro.storage.types.sort_key` values, so the index order
    is exactly the order the executor's ORDER BY produces and the order
    ``compare_values`` induces within a typed column.  NULL rows are tracked
    separately (they participate in ordered scans, never in range lookups,
    and do not violate uniqueness).
    """

    kind = "sorted"

    def __init__(
        self,
        name: str,
        column: str,
        unique: bool = False,
        store: PageStore | None = None,
        order: int = DEFAULT_ORDER,
    ):
        self.name = name
        self.column = column
        self.unique = unique
        self._tree = BPlusTree(store=store, order=order)
        self._null_rows: set[int] = set()

    def __repr__(self) -> str:
        return (
            f"SortedIndex(name={self.name!r}, column={self.column!r}, "
            f"unique={self.unique!r})"
        )

    def insert(self, value: object, row_id: int) -> None:
        """Register ``row_id`` under ``value``; NULL rows go to the null set."""
        if value is None:
            self._null_rows.add(row_id)
            return
        key = sort_key(value)
        if self.unique and self._tree.contains(key):
            raise IntegrityError(
                f"unique index {self.name!r} violated for value {value!r}"
            )
        self._tree.insert(key, row_id)

    def delete(self, value: object, row_id: int) -> None:
        if value is None:
            self._null_rows.discard(row_id)
            return
        self._tree.delete(sort_key(value), row_id)

    def lookup(self, value: object) -> set[int]:
        """Row ids whose indexed column equals ``value`` (empty set for NULL)."""
        if value is None:
            return set()
        return set(self._tree.lookup(sort_key(value)))

    def range_row_ids(
        self,
        low_key: tuple | None,
        high_key: tuple | None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        descending: bool = False,
    ):
        """Row ids with ``low_key (<|<=) key (<|<=) high_key``, in key order.

        Bounds are :func:`~repro.storage.types.sort_key` keys (None =
        unbounded).  NULL rows are never part of a range — a comparison
        against NULL is unknown.
        """
        for _key, bucket in self._tree.item_range(
            low_key, high_key, low_inclusive, high_inclusive, descending
        ):
            yield from bucket

    def ordered_row_ids(self, descending: bool = False):
        """All row ids in index order, NULLs placed as ORDER BY places them.

        Ascending puts NULLs first (the engine's ``sort_key`` ranks NULL
        lowest), descending puts them last.
        """
        if not descending:
            yield from sorted(self._null_rows)
            yield from self.range_row_ids(None, None)
        else:
            yield from self.range_row_ids(None, None, descending=True)
            yield from sorted(self._null_rows)

    def distinct_values(self) -> int:
        return self._tree.distinct

    def clear(self) -> None:
        self._tree.clear()
        self._null_rows.clear()

    def drop(self) -> None:
        """Free every tree page; the index is unusable afterwards."""
        self._tree.drop()
        self._null_rows.clear()


#: Index kind name → implementation class (SQL ``USING`` clause, Table API).
INDEX_KINDS: dict[str, type] = {
    "hash": HashIndex,
    "sorted": SortedIndex,
    "btree": SortedIndex,  # common SQL spelling for the ordered kind
}
