"""Secondary indexes for heap tables.

The engine supports two index kinds:

* :class:`HashIndex` — equality lookups, enough for the Query Storage's
  frequent probes by ``qid``, ``relName``, and ``attrName`` during meta-query
  execution;
* :class:`SortedIndex` — a bisect-backed ordered index whose keys follow the
  engine's total order (:func:`~repro.storage.types.sort_key`), serving range
  predicates (``ts BETWEEN …``, ``temp < 18``) and ORDER BY without sorting.

Both kinds share the ``insert`` / ``delete`` / ``lookup`` surface so
:class:`~repro.storage.table.Table` maintains them uniformly; a column may
carry one index of each kind.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.errors import IntegrityError
from repro.storage.types import sort_key


@dataclass
class HashIndex:
    """A hash index mapping a column value to the set of row ids holding it."""

    name: str
    column: str
    unique: bool = False
    _buckets: dict[object, set[int]] = field(default_factory=dict, repr=False)

    kind = "hash"

    def insert(self, value: object, row_id: int) -> None:
        """Register ``row_id`` under ``value``; NULLs are not indexed."""
        if value is None:
            return
        bucket = self._buckets.setdefault(value, set())
        if self.unique and bucket:
            raise IntegrityError(
                f"unique index {self.name!r} violated for value {value!r}"
            )
        bucket.add(row_id)

    def delete(self, value: object, row_id: int) -> None:
        if value is None:
            return
        bucket = self._buckets.get(value)
        if bucket is None:
            return
        bucket.discard(row_id)
        if not bucket:
            del self._buckets[value]

    def lookup(self, value: object) -> set[int]:
        """Row ids whose indexed column equals ``value`` (empty set for NULL)."""
        if value is None:
            return set()
        return set(self._buckets.get(value, set()))

    def distinct_values(self) -> int:
        return len(self._buckets)

    def clear(self) -> None:
        self._buckets.clear()


@dataclass
class SortedIndex:
    """An ordered index: a sorted key list plus per-key row-id buckets.

    Keys are :func:`~repro.storage.types.sort_key` values, so the index order
    is exactly the order the executor's ORDER BY produces and the order
    ``compare_values`` induces within a typed column.  NULL rows are tracked
    separately (they participate in ordered scans, never in range lookups,
    and do not violate uniqueness).
    """

    name: str
    column: str
    unique: bool = False
    _keys: list = field(default_factory=list, repr=False)
    _buckets: dict[tuple, set[int]] = field(default_factory=dict, repr=False)
    _null_rows: set[int] = field(default_factory=set, repr=False)

    kind = "sorted"

    def insert(self, value: object, row_id: int) -> None:
        """Register ``row_id`` under ``value``; NULL rows go to the null set."""
        if value is None:
            self._null_rows.add(row_id)
            return
        key = sort_key(value)
        bucket = self._buckets.get(key)
        if bucket is None:
            bisect.insort(self._keys, key)
            self._buckets[key] = {row_id}
            return
        if self.unique and bucket:
            raise IntegrityError(
                f"unique index {self.name!r} violated for value {value!r}"
            )
        bucket.add(row_id)

    def delete(self, value: object, row_id: int) -> None:
        if value is None:
            self._null_rows.discard(row_id)
            return
        key = sort_key(value)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(row_id)
        if not bucket:
            del self._buckets[key]
            position = bisect.bisect_left(self._keys, key)
            if position < len(self._keys) and self._keys[position] == key:
                del self._keys[position]

    def lookup(self, value: object) -> set[int]:
        """Row ids whose indexed column equals ``value`` (empty set for NULL)."""
        if value is None:
            return set()
        return set(self._buckets.get(sort_key(value), set()))

    def range_row_ids(
        self,
        low_key: tuple | None,
        high_key: tuple | None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        descending: bool = False,
    ):
        """Row ids with ``low_key (<|<=) key (<|<=) high_key``, in key order.

        Bounds are :func:`~repro.storage.types.sort_key` keys (None =
        unbounded).  NULL rows are never part of a range — a comparison
        against NULL is unknown.
        """
        if low_key is None:
            start = 0
        elif low_inclusive:
            start = bisect.bisect_left(self._keys, low_key)
        else:
            start = bisect.bisect_right(self._keys, low_key)
        if high_key is None:
            stop = len(self._keys)
        elif high_inclusive:
            stop = bisect.bisect_right(self._keys, high_key)
        else:
            stop = bisect.bisect_left(self._keys, high_key)
        selected = self._keys[start:stop]
        if descending:
            selected = reversed(selected)
        for key in selected:
            yield from sorted(self._buckets[key])

    def ordered_row_ids(self, descending: bool = False):
        """All row ids in index order, NULLs placed as ORDER BY places them.

        Ascending puts NULLs first (the engine's ``sort_key`` ranks NULL
        lowest), descending puts them last.
        """
        if not descending:
            yield from sorted(self._null_rows)
            yield from self.range_row_ids(None, None)
        else:
            yield from self.range_row_ids(None, None, descending=True)
            yield from sorted(self._null_rows)

    def distinct_values(self) -> int:
        return len(self._buckets)

    def clear(self) -> None:
        self._keys.clear()
        self._buckets.clear()
        self._null_rows.clear()


#: Index kind name → implementation class (SQL ``USING`` clause, Table API).
INDEX_KINDS: dict[str, type] = {
    "hash": HashIndex,
    "sorted": SortedIndex,
    "btree": SortedIndex,  # common SQL spelling for the ordered kind
}
