"""SQL value types and coercion rules for the storage engine."""

from __future__ import annotations

import enum

from repro.errors import SchemaError


class DataType(enum.Enum):
    """The storage engine's column types."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"

    @classmethod
    def from_sql(cls, type_name: str) -> "DataType":
        """Map a SQL type name (from CREATE TABLE) to a :class:`DataType`."""
        normalized = type_name.strip().upper()
        aliases = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "FLOAT": cls.FLOAT,
            "REAL": cls.FLOAT,
            "DOUBLE": cls.FLOAT,
            "DECIMAL": cls.FLOAT,
            "NUMERIC": cls.FLOAT,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
        }
        if normalized not in aliases:
            raise SchemaError(f"unsupported SQL type: {type_name!r}")
        return aliases[normalized]

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INTEGER, DataType.FLOAT)


def coerce_value(value: object, data_type: DataType, column: str = "") -> object:
    """Coerce ``value`` to the Python representation of ``data_type``.

    ``None`` (SQL NULL) passes through unchanged.  Raises
    :class:`~repro.errors.SchemaError` when the value cannot be represented.
    """
    if value is None:
        return None
    label = f" for column {column!r}" if column else ""
    if data_type is DataType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError as exc:
                raise SchemaError(f"cannot coerce {value!r} to INTEGER{label}") from exc
        raise SchemaError(f"cannot coerce {value!r} to INTEGER{label}")
    if data_type is DataType.FLOAT:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError as exc:
                raise SchemaError(f"cannot coerce {value!r} to FLOAT{label}") from exc
        raise SchemaError(f"cannot coerce {value!r} to FLOAT{label}")
    if data_type is DataType.TEXT:
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, (int, float)):
            return str(value)
        raise SchemaError(f"cannot coerce {value!r} to TEXT{label}")
    if data_type is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str) and value.lower() in ("true", "false"):
            return value.lower() == "true"
        raise SchemaError(f"cannot coerce {value!r} to BOOLEAN{label}")
    raise SchemaError(f"unknown data type {data_type!r}")


def infer_type(value: object) -> DataType:
    """Infer the :class:`DataType` of a Python value (used by CREATE-from-rows)."""
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    return DataType.TEXT


def compare_values(left: object, right: object) -> int | None:
    """Three-way comparison honouring SQL NULL semantics.

    Returns ``None`` when either side is NULL (the comparison is *unknown*),
    otherwise -1, 0, or 1.  Mixed numeric comparisons are allowed; comparing a
    number with text falls back to string comparison of their repr, which is
    deterministic and sufficient for an analytical workload simulator.
    """
    if left is None or right is None:
        return None
    if isinstance(left, bool) or isinstance(right, bool):
        left_key, right_key = bool(left), bool(right)
    elif isinstance(left, (int, float)) and isinstance(right, (int, float)):
        left_key, right_key = left, right
    elif isinstance(left, str) and isinstance(right, str):
        left_key, right_key = left, right
    else:
        left_key, right_key = str(left), str(right)
    if left_key < right_key:
        return -1
    if left_key > right_key:
        return 1
    return 0


def sort_key(value: object):
    """A total-order sort key that places NULLs first and mixes types safely."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, float(value))
    return (2, str(value))
