"""Execution-engine settings: batch sizing and parallel-scan knobs.

The batched execution model (see :mod:`repro.storage.operators`) moves rows
through the operator tree in lists of ``batch_size`` binding dicts instead of
one row per ``next()`` call, and fans large sequential scans across
``parallel_workers`` threads once a table crosses ``parallel_threshold`` rows.
These knobs live in their own frozen dataclass so that

* a :class:`~repro.storage.database.Database` can be tuned per instance
  (the CQMS meta-database and the user DBMS need not agree),
* the planner can read them when costing a scan without importing the
  CQMS-level :class:`~repro.core.config.CQMSConfig` (which sits above the
  storage layer and maps its ``exec_*`` fields onto this class).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.buffer_pool import DEFAULT_BUFFER_POOL_PAGES

#: Rows per batch moved through the operator tree per ``next()`` call.
DEFAULT_BATCH_SIZE = 256

#: Worker threads a ParallelSeqScan fans partitions across.  Defaults to 1
#: (parallel scans off): under CPython's GIL the scan's pure-Python row
#: construction cannot run concurrently, so the fan-out's barrier
#: materialization costs more than it saves (``bench_exec_engine.py``
#: quantifies this).  Raise it on free-threaded interpreters or workloads
#: whose per-row work releases the GIL.
DEFAULT_PARALLEL_WORKERS = 1

#: Minimum heap row count before the planner considers a parallel scan
#: (applies once parallel_workers > 1).
DEFAULT_PARALLEL_THRESHOLD = 4096


@dataclass(frozen=True)
class ExecutionSettings:
    """Tunable parameters of the batched execution engine.

    ``compile_expressions=False`` disables the compiled predicate/projection
    fast paths, forcing per-row Scope/evaluate dispatch — a diagnostic switch
    (like the planner's ``use_indexes=False``) that lets benchmarks quantify
    the batch engine against the historical row-at-a-time evaluation model.

    ``vectorized_aggregation=False`` keeps grouped queries on the executor's
    historical materialize-then-rewalk aggregation instead of planning a
    ``HashAggregate``/``SortedGroupAggregate`` stage — the baseline the
    aggregation benchmarks measure speedups against.

    ``verify_plans=True`` runs the plan-invariant verifier
    (:mod:`repro.analysis.plan_verify`) over every plan before the executor
    streams it, raising :class:`~repro.errors.ExecutionError` on any
    ERROR-severity finding — a debugging/CI guardrail, off by default.

    ``buffer_pool_pages`` caps how many pages (heap pages + B+ tree nodes)
    a durable database keeps resident; the least recently used spill to the
    page file.  In-memory databases ignore it — with no pager there is
    nowhere to evict to.
    """

    batch_size: int = DEFAULT_BATCH_SIZE
    parallel_workers: int = DEFAULT_PARALLEL_WORKERS
    parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD
    compile_expressions: bool = True
    vectorized_aggregation: bool = True
    verify_plans: bool = False
    buffer_pool_pages: int = DEFAULT_BUFFER_POOL_PAGES

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.parallel_workers < 1:
            raise ValueError("parallel_workers must be at least 1")
        if self.parallel_threshold < 0:
            raise ValueError("parallel_threshold must be non-negative")
        if self.buffer_pool_pages < 8:
            raise ValueError("buffer_pool_pages must be at least 8")


#: Shared default instance (settings are immutable, so sharing is safe).
DEFAULT_SETTINGS = ExecutionSettings()
