"""Execution-engine settings: batch sizing, columnar, and parallel knobs.

The batched execution model (see :mod:`repro.storage.operators`) moves rows
through the operator tree in lists of ``batch_size`` binding dicts instead of
one row per ``next()`` call, and fans large sequential scans across
``parallel_workers`` threads once a table crosses ``parallel_threshold`` rows.
These knobs live in their own frozen dataclass so that

* a :class:`~repro.storage.database.Database` can be tuned per instance
  (the CQMS meta-database and the user DBMS need not agree),
* the planner can read them when costing a scan without importing the
  CQMS-level :class:`~repro.core.config.CQMSConfig` (which sits above the
  storage layer and maps its ``exec_*`` fields onto this class).
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass

from repro.storage.buffer_pool import DEFAULT_BUFFER_POOL_PAGES

#: Rows per batch moved through the operator tree per ``next()`` call.
DEFAULT_BATCH_SIZE = 256


def _gil_enabled() -> bool:
    """Whether this interpreter runs with the GIL (True on any build
    without the probe — every GIL-ful CPython before 3.13)."""
    probe = getattr(sys, "_is_gil_enabled", None)
    return True if probe is None else bool(probe())


def auto_parallel_workers(
    gil_enabled: bool | None = None, cpu_count: int | None = None
) -> int:
    """The default thread fan-out for this interpreter.

    Under CPython's GIL the scan's pure-Python row construction cannot run
    concurrently, so the fan-out's barrier materialization costs more than
    it saves (``bench_exec_engine.py`` measured the 4-worker thread lane at
    0.87x — a wash) and the default stays 1.  On a free-threaded build
    (``sys._is_gil_enabled()`` reports False) the same threads genuinely
    run in parallel, so the default unlocks to ``min(4, cpu_count)``.
    The two parameters exist for tests; production callers pass nothing.
    """
    if gil_enabled is None:
        gil_enabled = _gil_enabled()
    if gil_enabled:
        return 1
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    return max(1, min(4, cpu_count))


#: Worker threads a ParallelSeqScan fans partitions across: 1 (off) under
#: the GIL, ``min(4, cpu_count)`` on free-threaded interpreters — see
#: :func:`auto_parallel_workers` for the measurement behind the split.
DEFAULT_PARALLEL_WORKERS = auto_parallel_workers()

#: Minimum heap row count before the planner considers a parallel scan
#: (applies once parallel_workers > 1).
DEFAULT_PARALLEL_THRESHOLD = 4096

#: Forked aggregation workers (0/1 = lane off).  Unlike the thread lane the
#: process lane pays real fork + state-pickling cost, so it is opt-in.
DEFAULT_PROCESS_WORKERS = 1

#: Minimum estimated input rows before the planner routes a grouped query
#: through the process-pool partial-aggregation lane.
DEFAULT_PROCESS_THRESHOLD = 50_000


@dataclass(frozen=True)
class ExecutionSettings:
    """Tunable parameters of the batched execution engine.

    ``columnar_kernels=False`` disables the columnar batch representation
    and its kernels (:mod:`repro.storage.colbatch`,
    :mod:`repro.storage.kernels`), keeping scans/filters/aggregation on the
    row-batch path — bit-for-bit today's engine, and the baseline
    ``bench_columnar.py`` measures against.  The columnar path also
    requires ``compile_expressions`` (kernels are compiled predicates).

    ``compile_expressions=False`` disables the compiled predicate/projection
    fast paths, forcing per-row Scope/evaluate dispatch — a diagnostic switch
    (like the planner's ``use_indexes=False``) that lets benchmarks quantify
    the batch engine against the historical row-at-a-time evaluation model.

    ``vectorized_aggregation=False`` keeps grouped queries on the executor's
    historical materialize-then-rewalk aggregation instead of planning a
    ``HashAggregate``/``SortedGroupAggregate`` stage — the baseline the
    aggregation benchmarks measure speedups against.

    ``process_workers > 1`` unlocks the fork-based partial-aggregation lane:
    the planner routes big grouped scans (``process_threshold`` estimated
    input rows or more, with far fewer groups) across forked workers that
    read the page file through their own read-only descriptors and ship
    O(groups) merged accumulator state back.  POSIX-only; silently falls
    back to the in-process path where ``os.fork`` is unavailable.

    ``verify_plans=True`` runs the plan-invariant verifier
    (:mod:`repro.analysis.plan_verify`) over every plan before the executor
    streams it, raising :class:`~repro.errors.ExecutionError` on any
    ERROR-severity finding — a debugging/CI guardrail, off by default.

    ``buffer_pool_pages`` caps how many pages (heap pages + B+ tree nodes)
    a durable database keeps resident; the least recently used spill to the
    page file.  In-memory databases ignore it — with no pager there is
    nowhere to evict to.
    """

    batch_size: int = DEFAULT_BATCH_SIZE
    parallel_workers: int = DEFAULT_PARALLEL_WORKERS
    parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD
    columnar_kernels: bool = True
    process_workers: int = DEFAULT_PROCESS_WORKERS
    process_threshold: int = DEFAULT_PROCESS_THRESHOLD
    compile_expressions: bool = True
    vectorized_aggregation: bool = True
    verify_plans: bool = False
    buffer_pool_pages: int = DEFAULT_BUFFER_POOL_PAGES

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.parallel_workers < 1:
            raise ValueError("parallel_workers must be at least 1")
        if self.parallel_threshold < 0:
            raise ValueError("parallel_threshold must be non-negative")
        if self.process_workers < 1:
            raise ValueError("process_workers must be at least 1")
        if self.process_threshold < 0:
            raise ValueError("process_threshold must be non-negative")
        if self.buffer_pool_pages < 8:
            raise ValueError("buffer_pool_pages must be at least 8")


#: Shared default instance (settings are immutable, so sharing is safe).
DEFAULT_SETTINGS = ExecutionSettings()
