"""Volcano-style physical operators for the SELECT pipeline.

Each operator is one node of a physical plan produced by
:mod:`repro.storage.planner`.  ``rows(ctx)`` lazily yields *binding
dictionaries* (binding name → row dict) so filters, joins, and projections
stream instead of materializing intermediate relations; ``explain_lines``
renders the subtree for ``Database.explain``.

Access paths:

* :class:`SeqScan` — full scan of a heap table,
* :class:`IndexScan` — equality probe of a :class:`~repro.storage.indexes.HashIndex`,
  either against a constant or, inside an :class:`IndexLookupJoin`, against the
  join key of each outer row (an index nested-loop join),
* :class:`RangeScan` — bisect walk of a :class:`~repro.storage.indexes.SortedIndex`
  between constant bounds; unbounded it doubles as an ordered full scan that
  lets the planner eliminate an ORDER BY sort.

Every scan also exposes ``pairs(ctx)`` yielding ``(row_id, row)`` so UPDATE
and DELETE reuse the same access paths to locate their target rows.

All operators charge their work to :class:`ExecutionContext.metrics` so
``rows_scanned`` reflects the rows actually touched by the chosen access path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import SchemaError
from repro.sql.ast_nodes import ColumnRef, Expression
from repro.sql.formatter import format_expression
from repro.storage.expression import Scope, evaluate, is_true
from repro.storage.types import DataType, coerce_value, compare_values, sort_key

#: One streamed row: binding name → row dict.
RowDict = dict[str, dict[str, object]]


@dataclass
class ExecutionContext:
    """Runtime services shared by every operator of one executing plan.

    ``run_subquery`` evaluates expression-level subqueries (IN / EXISTS /
    scalar); ``run_select`` executes a nested :class:`~repro.storage.planner.SelectPlan`
    (derived tables) through the full SELECT pipeline of the owning executor.
    """

    metrics: object
    outer_scope: Scope | None = None
    run_subquery: Callable | None = None
    run_select: Callable | None = None


class Operator:
    """Base class of physical plan nodes."""

    bindings: list[tuple[str, list[str]]]
    children: tuple["Operator", ...] = ()
    estimate: float = 0.0

    @property
    def binding_names(self) -> list[str]:
        return [name for name, _ in self.bindings]

    def rows(self, ctx: ExecutionContext) -> Iterator[RowDict]:
        raise NotImplementedError

    def label(self) -> str:
        raise NotImplementedError

    def explain_lines(self, depth: int = 0) -> list[str]:
        lines = ["  " * depth + self.label()]
        for child in self.children:
            lines.extend(child.explain_lines(depth + 1))
        return lines


class EmptyRow(Operator):
    """The FROM-less relation: exactly one empty binding row (``SELECT 1``)."""

    def __init__(self):
        self.bindings = []
        self.estimate = 1.0

    def rows(self, ctx: ExecutionContext) -> Iterator[RowDict]:
        yield {}

    def label(self) -> str:
        return "Result"


class SeqScan(Operator):
    """Full scan of a heap table under one binding name."""

    def __init__(self, table, binding: str, estimate: float):
        self.table = table
        self.binding = binding
        self.bindings = [(binding, list(table.schema.column_names))]
        self.estimate = estimate

    def pairs(self, ctx: ExecutionContext) -> Iterator[tuple[int, dict]]:
        for row_id, row in self.table.scan():
            ctx.metrics.rows_scanned += 1
            yield row_id, row

    def rows(self, ctx: ExecutionContext) -> Iterator[RowDict]:
        for _, row in self.pairs(ctx):
            yield {self.binding: row}

    def label(self) -> str:
        return f"SeqScan {_scan_target(self.table, self.binding)} [est={self.estimate:.0f}]"


class IndexScan(Operator):
    """Equality probe of a hash index.

    ``value_expr`` is either a constant expression (planner-selected equality
    conjunct) or a column of the outer side when the scan is driven by an
    :class:`IndexLookupJoin` (``probe=True``).
    """

    def __init__(
        self,
        table,
        binding: str,
        column: str,
        value_expr: Expression,
        estimate: float,
        probe: bool = False,
    ):
        self.table = table
        self.binding = binding
        self.column = column
        self.value_expr = value_expr
        self.bindings = [(binding, list(table.schema.column_names))]
        self.estimate = estimate
        self.probe = probe

    def lookup_pairs(self, value: object, ctx: ExecutionContext):
        """Fetch ``(row_id, row)`` pairs whose indexed column equals ``value``.

        Equality must mean exactly what the engine's ``=`` means
        (:func:`~repro.storage.types.compare_values`), so the probe value is
        translated into hash keys first; when the comparison cannot be
        expressed as hash lookups (e.g. a boolean probed against a numeric
        column) the scan degrades to a filtered heap scan with identical
        semantics.
        """
        if value is None:
            return
        index = self.table.index_for(self.column)
        keys = (
            equality_probe_keys(value, self.table.schema.column(self.column).data_type)
            if index is not None
            else None
        )
        if keys is None:
            for row_id, row in self.table.scan():
                ctx.metrics.rows_scanned += 1
                if compare_values(row.get(self.column), value) == 0:
                    yield row_id, row
            return
        ctx.metrics.index_lookups += 1
        row_ids: set[int] = set()
        for key in keys:
            row_ids |= index.lookup(key)
        for row_id in sorted(row_ids):
            row = self.table.get(row_id)
            if row is None:
                continue
            ctx.metrics.rows_scanned += 1
            yield row_id, row

    def lookup_rows(self, value: object, ctx: ExecutionContext):
        for _, row in self.lookup_pairs(value, ctx):
            yield row

    def pairs(self, ctx: ExecutionContext) -> Iterator[tuple[int, dict]]:
        scope = Scope({}, parent=ctx.outer_scope)
        value = evaluate(self.value_expr, scope, ctx.run_subquery)
        yield from self.lookup_pairs(value, ctx)

    def rows(self, ctx: ExecutionContext) -> Iterator[RowDict]:
        for _, row in self.pairs(ctx):
            yield {self.binding: row}

    def label(self) -> str:
        condition = f"{self.column} = {format_expression(self.value_expr)}"
        return (
            f"IndexScan {_scan_target(self.table, self.binding)} "
            f"({condition}) [est={self.estimate:.0f}]"
        )


class RangeScan(Operator):
    """Ordered walk of a :class:`~repro.storage.indexes.SortedIndex`.

    ``low`` / ``high`` are constant bound expressions (None = unbounded);
    ``descending`` reverses the walk.  With both bounds absent the scan visits
    every row in index order — including NULL rows, placed where ORDER BY
    places them — which is what lets the planner drop an explicit sort.
    Bounded scans skip NULL rows, exactly as the range predicate would.
    """

    def __init__(
        self,
        table,
        binding: str,
        column: str,
        low: Expression | None,
        high: Expression | None,
        low_inclusive: bool,
        high_inclusive: bool,
        estimate: float,
        descending: bool = False,
    ):
        self.table = table
        self.binding = binding
        self.column = column
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.bindings = [(binding, list(table.schema.column_names))]
        self.estimate = estimate
        self.descending = descending

    def _bound_key(self, bound: Expression | None, ctx: ExecutionContext):
        """Evaluate a bound to its index key: (key, ok) with ok=False for NULL."""
        if bound is None:
            return None, True
        scope = Scope({}, parent=ctx.outer_scope)
        value = evaluate(bound, scope, ctx.run_subquery)
        if value is None:
            return None, False  # comparison with NULL is unknown: empty range
        data_type = self.table.schema.column(self.column).data_type
        key = range_probe_key(value, data_type)
        if key is None:
            raise _RangeKeyUnavailable(value)
        return key, True

    def pairs(self, ctx: ExecutionContext) -> Iterator[tuple[int, dict]]:
        index = self.table.sorted_index_for(self.column)
        if index is None:
            yield from self._fallback_pairs(ctx)
            return
        try:
            low_key, low_ok = self._bound_key(self.low, ctx)
            high_key, high_ok = self._bound_key(self.high, ctx)
        except _RangeKeyUnavailable:
            # The comparison semantics cannot be expressed as index keys
            # (planner normally prevents this); keep compare_values semantics.
            yield from self._fallback_pairs(ctx)
            return
        if not low_ok or not high_ok:
            return
        ctx.metrics.index_lookups += 1
        if self.low is None and self.high is None:
            row_ids = index.ordered_row_ids(descending=self.descending)
        else:
            row_ids = index.range_row_ids(
                low_key,
                high_key,
                self.low_inclusive,
                self.high_inclusive,
                descending=self.descending,
            )
        for row_id in row_ids:
            row = self.table.get(row_id)
            if row is None:
                continue
            ctx.metrics.rows_scanned += 1
            yield row_id, row

    def _fallback_pairs(self, ctx: ExecutionContext) -> Iterator[tuple[int, dict]]:
        """Heap scan honouring the bounds and the promised order."""
        scope = Scope({}, parent=ctx.outer_scope)
        low_value = evaluate(self.low, scope, ctx.run_subquery) if self.low is not None else None
        high_value = (
            evaluate(self.high, scope, ctx.run_subquery) if self.high is not None else None
        )
        if (self.low is not None and low_value is None) or (
            self.high is not None and high_value is None
        ):
            return
        matches = []
        for row_id, row in self.table.scan():
            ctx.metrics.rows_scanned += 1
            value = row.get(self.column)
            if self.low is not None:
                ordering = compare_values(value, low_value)
                if ordering is None or ordering < 0 or (ordering == 0 and not self.low_inclusive):
                    continue
            if self.high is not None:
                ordering = compare_values(value, high_value)
                if ordering is None or ordering > 0 or (ordering == 0 and not self.high_inclusive):
                    continue
            matches.append((row_id, row))
        unbounded = self.low is None and self.high is None
        matches.sort(
            key=lambda pair: sort_key(pair[1].get(self.column)),
            reverse=self.descending,
        )
        if unbounded and self.descending:
            # NULLs sort lowest ascending, so a reversed sort puts them first;
            # ORDER BY ... DESC wants them last.
            nulls = [pair for pair in matches if pair[1].get(self.column) is None]
            matches = [pair for pair in matches if pair[1].get(self.column) is not None] + nulls
        yield from matches

    def rows(self, ctx: ExecutionContext) -> Iterator[RowDict]:
        for _, row in self.pairs(ctx):
            yield {self.binding: row}

    def label(self) -> str:
        conditions = []
        if self.low is not None:
            op = ">=" if self.low_inclusive else ">"
            conditions.append(f"{self.column} {op} {format_expression(self.low)}")
        if self.high is not None:
            op = "<=" if self.high_inclusive else "<"
            conditions.append(f"{self.column} {op} {format_expression(self.high)}")
        if not conditions:
            conditions.append(f"ORDER BY {self.column}")
        detail = " AND ".join(conditions)
        if self.descending:
            detail += " DESC" if self.low is None and self.high is None else ", desc"
        return (
            f"RangeScan {_scan_target(self.table, self.binding)} "
            f"({detail}) [est={self.estimate:.0f}]"
        )


class _RangeKeyUnavailable(Exception):
    """A range bound cannot be expressed as a sorted-index key."""


class SubqueryScan(Operator):
    """A derived table ``(SELECT ...) alias``: the subplan runs through the
    executor (aggregation, ordering, ...) and its tuples are re-bound."""

    def __init__(self, plan, alias: str, estimate: float):
        self.plan = plan
        self.alias = alias
        self.bindings = [(alias, list(plan.output_columns))]
        self.children = (plan.root,)
        self.estimate = estimate

    def rows(self, ctx: ExecutionContext) -> Iterator[RowDict]:
        columns, tuples = ctx.run_select(self.plan)
        for values in tuples:
            yield {self.alias: dict(zip(columns, values))}

    def label(self) -> str:
        return f"SubqueryScan AS {self.alias} [est={self.estimate:.0f}]"


class Filter(Operator):
    """Streaming conjunctive filter over a child operator."""

    def __init__(self, child: Operator, predicates: list[Expression], estimate: float):
        self.child = child
        self.predicates = list(predicates)
        self.bindings = child.bindings
        self.children = (child,)
        self.estimate = estimate

    def rows(self, ctx: ExecutionContext) -> Iterator[RowDict]:
        for row in self.child.rows(ctx):
            scope = Scope(row, parent=ctx.outer_scope)
            if all(
                is_true(evaluate(predicate, scope, ctx.run_subquery))
                for predicate in self.predicates
            ):
                yield row

    def label(self) -> str:
        predicates = " AND ".join(format_expression(p) for p in self.predicates)
        return f"Filter ({predicates})"


class HashJoin(Operator):
    """Equi-join: the estimated-smaller side is materialized into a hash table
    and the other side streams through it."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        pairs: list[tuple[ColumnRef, ColumnRef]],
        build_left: bool,
        estimate: float,
    ):
        self.left = left
        self.right = right
        self.pairs = list(pairs)
        self.build_left = build_left
        self.bindings = left.bindings + right.bindings
        self.children = (left, right)
        self.estimate = estimate

    def rows(self, ctx: ExecutionContext) -> Iterator[RowDict]:
        left_keys = [left for left, _ in self.pairs]
        right_keys = [right for _, right in self.pairs]
        if self.build_left:
            build, probe = self.left, self.right
            build_keys, probe_keys = left_keys, right_keys
        else:
            build, probe = self.right, self.left
            build_keys, probe_keys = right_keys, left_keys
        table: dict[tuple, list[RowDict]] = {}
        for row in build.rows(ctx):
            scope = Scope(row, parent=ctx.outer_scope)
            key = tuple(scope.resolve(column) for column in build_keys)
            if any(value is None for value in key):
                continue
            table.setdefault(key, []).append(row)
        for row in probe.rows(ctx):
            scope = Scope(row, parent=ctx.outer_scope)
            key = tuple(scope.resolve(column) for column in probe_keys)
            if any(value is None for value in key):
                continue
            for match in table.get(key, ()):
                combined = dict(row)
                combined.update(match)
                ctx.metrics.rows_joined += 1
                yield combined

    def label(self) -> str:
        condition = " AND ".join(
            f"{left} = {right}" for left, right in self.pairs
        )
        side = "left" if self.build_left else "right"
        return f"HashJoin ({condition}) [build={side}, est={self.estimate:.0f}]"


class IndexLookupJoin(Operator):
    """Index nested-loop join: for each outer row, probe the inner table's
    hash index on the join key instead of scanning the inner table."""

    def __init__(
        self,
        outer: Operator,
        scan: IndexScan,
        outer_key: Expression,
        residual: list[Expression],
        estimate: float,
    ):
        self.outer = outer
        self.scan = scan
        self.outer_key = outer_key
        self.residual = list(residual)
        self.bindings = outer.bindings + scan.bindings
        self.children = (outer, scan)
        self.estimate = estimate

    def rows(self, ctx: ExecutionContext) -> Iterator[RowDict]:
        for outer_row in self.outer.rows(ctx):
            scope = Scope(outer_row, parent=ctx.outer_scope)
            value = evaluate(self.outer_key, scope, ctx.run_subquery)
            if value is None:
                continue
            for inner_row in self.scan.lookup_rows(value, ctx):
                combined = dict(outer_row)
                combined[self.scan.binding] = inner_row
                if self.residual:
                    inner_scope = Scope(combined, parent=ctx.outer_scope)
                    if not all(
                        is_true(evaluate(p, inner_scope, ctx.run_subquery))
                        for p in self.residual
                    ):
                        continue
                ctx.metrics.rows_joined += 1
                yield combined

    def label(self) -> str:
        parts = [
            f"IndexLoopJoin ({self.scan.binding}.{self.scan.column} = "
            f"{format_expression(self.outer_key)})"
        ]
        if self.residual:
            residual = " AND ".join(format_expression(p) for p in self.residual)
            parts.append(f"filter ({residual})")
        return " ".join(parts) + f" [est={self.estimate:.0f}]"


class NestedLoopJoin(Operator):
    """Cross product (no usable equi-join conjunct); the right side is
    materialized once, the left side streams."""

    def __init__(self, left: Operator, right: Operator, estimate: float):
        self.left = left
        self.right = right
        self.bindings = left.bindings + right.bindings
        self.children = (left, right)
        self.estimate = estimate

    def rows(self, ctx: ExecutionContext) -> Iterator[RowDict]:
        right_rows = list(self.right.rows(ctx))
        for left_row in self.left.rows(ctx):
            for right_row in right_rows:
                combined = dict(left_row)
                combined.update(right_row)
                ctx.metrics.rows_joined += 1
                yield combined

    def label(self) -> str:
        return f"NestedLoopJoin (cross) [est={self.estimate:.0f}]"


class OuterJoin(Operator):
    """LEFT or FULL outer join (RIGHT joins are swapped into LEFT by the
    planner).  Both sides materialize — outer joins need match bookkeeping."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        condition: Expression | None,
        join_type: str,
        estimate: float,
    ):
        self.left = left
        self.right = right
        self.condition = condition
        self.join_type = join_type
        self.bindings = left.bindings + right.bindings
        self.children = (left, right)
        self.estimate = estimate

    def rows(self, ctx: ExecutionContext) -> Iterator[RowDict]:
        right_rows = list(self.right.rows(ctx))
        null_right = {
            name: {column: None for column in columns}
            for name, columns in self.right.bindings
        }
        matched_right: set[int] = set()
        for left_row in self.left.rows(ctx):
            matched = False
            for index, right_row in enumerate(right_rows):
                combined = dict(left_row)
                combined.update(right_row)
                scope = Scope(combined, parent=ctx.outer_scope)
                if self.condition is None or is_true(
                    evaluate(self.condition, scope, ctx.run_subquery)
                ):
                    matched = True
                    matched_right.add(index)
                    ctx.metrics.rows_joined += 1
                    yield combined
            if not matched:
                combined = dict(left_row)
                combined.update(null_right)
                ctx.metrics.rows_joined += 1
                yield combined
        if self.join_type == "FULL":
            null_left = {
                name: {column: None for column in columns}
                for name, columns in self.left.bindings
            }
            for index, right_row in enumerate(right_rows):
                if index not in matched_right:
                    combined = dict(null_left)
                    combined.update(right_row)
                    ctx.metrics.rows_joined += 1
                    yield combined

    def label(self) -> str:
        condition = (
            format_expression(self.condition) if self.condition is not None else "TRUE"
        )
        return f"{self.join_type.title()}OuterJoin ({condition}) [est={self.estimate:.0f}]"


def equality_probe_keys(value: object, data_type: DataType) -> list | None:
    """Hash keys that reproduce ``compare_values`` equality for a column.

    Returns the keys to probe (possibly empty — provably no match), or None
    when the comparison semantics cannot be expressed as hash lookups and the
    caller must fall back to a ``compare_values`` scan.  Stored values are
    always coerced to ``data_type``, which is what makes the mapping exact.
    """
    if value is None:
        return []
    if isinstance(value, bool):
        # Against non-boolean columns, compare_values matches by truthiness —
        # that is a set of keys, not one.
        return [value] if data_type is DataType.BOOLEAN else None
    if isinstance(value, (int, float)):
        if data_type in (DataType.INTEGER, DataType.FLOAT):
            return [value]
        if data_type is DataType.TEXT:
            return [str(value)]  # compare_values falls back to str comparison
        return None
    if isinstance(value, str):
        if data_type is DataType.TEXT:
            return [value]
        if data_type is DataType.BOOLEAN:
            return [bool(value)]  # compare_values compares truthiness
        if data_type in (DataType.INTEGER, DataType.FLOAT):
            # compare_values compares str(stored) to the probe string, so the
            # probe matches only when it round-trips exactly ('2' does, '02'
            # and '2.00' do not).
            try:
                coerced = coerce_value(value, data_type)
            except SchemaError:
                return []
            return [coerced] if str(coerced) == value else []
    return None


def range_probe_key(value: object, data_type: DataType) -> tuple | None:
    """The sorted-index key that reproduces ``compare_values`` ordering.

    A :class:`~repro.storage.indexes.SortedIndex` orders by
    :func:`~repro.storage.types.sort_key` of the *stored* (coerced) values, so
    a probe is only valid when comparing the probe value against every stored
    value follows the same order as comparing their sort keys:

    * numeric probe vs numeric column — numeric order,
    * string probe vs TEXT column — string order,
    * numeric probe vs TEXT column — ``compare_values`` falls back to
      comparing ``str(stored)`` with ``str(probe)``, which is string order,
    * any probe vs BOOLEAN column — truthiness order,

    Returns None when the semantics cannot be expressed (e.g. a string probe
    against a numeric column compares decimal *strings*, which does not follow
    numeric index order) and the caller must fall back to a scan.
    """
    if value is None:
        return None
    if data_type is DataType.BOOLEAN:
        return sort_key(bool(value))
    if isinstance(value, bool):
        # Against non-boolean columns compare_values uses truthiness, which a
        # value-ordered index cannot serve.
        return None
    if isinstance(value, (int, float)):
        if data_type in (DataType.INTEGER, DataType.FLOAT):
            return sort_key(value)
        if data_type is DataType.TEXT:
            return sort_key(str(value))
        return None
    if isinstance(value, str):
        if data_type is DataType.TEXT:
            return sort_key(value)
        return None
    return None


def _scan_target(table, binding: str) -> str:
    if binding.lower() == table.name.lower():
        return table.name
    return f"{table.name} AS {binding}"
