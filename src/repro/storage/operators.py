"""Batched Volcano-style physical operators for the SELECT pipeline.

Each operator is one node of a physical plan produced by
:mod:`repro.storage.planner`.  The engine moves data **batch-at-a-time**:
``batches(ctx)`` lazily yields lists of *binding dictionaries* (binding name →
row dict, ``ctx.batch_size`` rows per list), so one ``next()`` call pushes a
whole batch through a filter or join instead of paying a generator round-trip
per row.  ``rows(ctx)`` remains as a thin compatibility shim that flattens the
batch stream for call sites that still think row-at-a-time.

Two more things fall out of the batch refactor:

* **Compiled predicates** — filters, hash-join key extraction, and index-loop
  residuals compile simple conjuncts (column/literal comparisons, BETWEEN,
  IN lists, LIKE, IS NULL) into plain Python closures evaluated over whole
  batches, bypassing per-row ``Scope``/``evaluate`` dispatch while reproducing
  its semantics exactly (both routes share :func:`~repro.storage.types.compare_values`
  and :func:`~repro.storage.expression.like_regex`).  Anything not compilable
  falls back to the evaluator, predicate order preserved.
* **Per-node observability** — when :class:`ExecutionContext.node_stats` is a
  dict (EXPLAIN ANALYZE), every operator transparently records the actual
  rows, batches, loops, and wall time it produced, and ``explain_lines``
  renders those actuals next to the optimizer's estimates.

Access paths:

* :class:`SeqScan` — full scan of a heap table,
* :class:`ParallelSeqScan` — partitioned heap scan fanned across a thread
  pool, re-assembled in heap order so downstream sorts/limits stay
  deterministic,
* :class:`IndexScan` — equality probe of a :class:`~repro.storage.indexes.HashIndex`,
  either against a constant or, inside an :class:`IndexLookupJoin`, against the
  join key of each outer row (an index nested-loop join),
* :class:`RangeScan` — bisect walk of a :class:`~repro.storage.indexes.SortedIndex`
  between constant bounds; unbounded it doubles as an ordered full scan that
  lets the planner eliminate an ORDER BY sort.

Every scan also exposes ``pairs(ctx)`` yielding ``(row_id, row)`` so UPDATE
and DELETE reuse the same access paths to locate their target rows.

All operators charge their work to :class:`ExecutionContext.metrics` so
``rows_scanned`` reflects the rows actually touched by the chosen access path.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import QueryTimeoutError, SchemaError
from repro.obs.metrics import engine_timer
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    InList,
    Literal,
    UnaryOp,
)
from repro.sql.formatter import format_expression
from repro.storage.aggregates import AggregateCollection, hashable_value
from repro.storage.colbatch import ColumnBatch
from repro.storage.exec_settings import DEFAULT_BATCH_SIZE
from repro.storage.expression import Scope, evaluate, is_true, like_regex
from repro.storage.kernels import (
    apply_kernels,
    compile_columnar_conjuncts,
    hash_group_keys,
    resolve_columnar_columns,
)
from repro.storage.types import DataType, coerce_value, compare_values, sort_key

#: Lazily created process-wide worker pool shared by every ParallelSeqScan.
#: Spinning threads up per scan costs more than a mid-size scan itself, so
#: workers persist across queries; the engine executes one statement at a
#: time, so scans never compete for the pool.
_SCAN_POOL: ThreadPoolExecutor | None = None
_SCAN_POOL_LOCK = threading.Lock()


def _scan_pool() -> ThreadPoolExecutor:
    global _SCAN_POOL
    if _SCAN_POOL is None:
        with _SCAN_POOL_LOCK:
            if _SCAN_POOL is None:
                _SCAN_POOL = ThreadPoolExecutor(
                    max_workers=max(4, min(32, (os.cpu_count() or 4))),
                    thread_name_prefix="repro-scan",
                )
    return _SCAN_POOL


def shutdown_scan_pool(wait: bool = True) -> None:
    """Shut down the shared scan pool (it is lazily re-created on next use).

    Called by ``Database.close()`` (``wait=False``) so closing a database in
    a long-lived process does not leak idle worker threads, and registered
    with :mod:`atexit` for interpreter shutdown.  Statement execution is
    synchronous, so no scan can be in flight when a database closes between
    statements; a concurrently open database simply re-creates the pool on
    its next parallel scan.
    """
    global _SCAN_POOL
    with _SCAN_POOL_LOCK:
        pool, _SCAN_POOL = _SCAN_POOL, None
    if pool is not None:
        pool.shutdown(wait=wait)


atexit.register(shutdown_scan_pool)

#: Sentinel distinguishing "not compiled yet" from "compilation returned None".
_UNSET = object()

#: One streamed row: binding name → row dict.
RowDict = dict[str, dict[str, object]]

#: One streamed batch: up to ``ctx.batch_size`` rows.
RowBatch = list[RowDict]


@dataclass
class NodeStats:
    """Actual per-operator execution counters (EXPLAIN ANALYZE).

    ``rows``/``batches`` count what the node *produced*; ``loops`` counts how
    often it was (re)started — 1 for a streamed node, once per outer row for
    the probe side of an :class:`IndexLookupJoin`.  ``wall_seconds`` is
    inclusive wall time spent inside the node's generator (children included),
    measured with :data:`~repro.obs.metrics.engine_timer` regardless of the database's
    injectable clock.  ``columnar_batches`` counts the batches the node
    produced in columnar form and ``kernel_seconds`` the time it spent inside
    selection-vector kernels — together they make columnar vs fallback
    execution visible per node in EXPLAIN ANALYZE.
    """

    rows: int = 0
    batches: int = 0
    loops: int = 0
    wall_seconds: float = 0.0
    columnar_batches: int = 0
    kernel_seconds: float = 0.0

    def describe(self) -> str:
        parts = [f"rows={self.rows}"]
        if self.batches:
            parts.append(f"batches={self.batches}")
        if self.columnar_batches:
            parts.append(f"columnar={self.columnar_batches}")
        if self.loops > 1:
            parts.append(f"loops={self.loops}")
        if self.kernel_seconds:
            parts.append(f"kernel={self.kernel_seconds * 1000.0:.3f}ms")
        if self.batches or self.columnar_batches:
            parts.append(f"time={self.wall_seconds * 1000.0:.3f}ms")
        return "actual " + " ".join(parts)


@dataclass
class ExecutionContext:
    """Runtime services shared by every operator of one executing plan.

    ``run_subquery`` evaluates expression-level subqueries (IN / EXISTS /
    scalar); ``run_select`` executes a nested :class:`~repro.storage.planner.SelectPlan`
    (derived tables) through the full SELECT pipeline of the owning executor.
    ``batch_size`` is the target rows-per-batch (the executor caps it at the
    LIMIT row budget on streaming plans so short-circuited scans stay honest);
    ``node_stats`` maps ``id(operator)`` → :class:`NodeStats` when the
    execution is being observed for EXPLAIN ANALYZE, else None.
    """

    metrics: object
    outer_scope: Scope | None = None
    run_subquery: Callable | None = None
    run_select: Callable | None = None
    batch_size: int = DEFAULT_BATCH_SIZE
    node_stats: dict[int, NodeStats] | None = field(default=None)
    #: False forces per-row Scope/evaluate dispatch (benchmark diagnostics).
    compile_expressions: bool = True
    #: False keeps every operator on row batches (ExecutionSettings knob);
    #: the columnar path additionally requires ``compile_expressions``.
    columnar_kernels: bool = True
    #: Absolute ``timer`` deadline of the statement's timeout budget, or None
    #: (no budget).  Scans call :meth:`tick` at every batch flush, so a
    #: runaway statement cancels at the next batch boundary — cooperative,
    #: never mid-mutation.
    deadline: float | None = None
    #: Duration source shared with the executor's instrumentation (the
    #: telemetry registry's timer when one is attached).
    timer: Callable[[], float] = engine_timer

    def tick(self) -> None:
        """Raise :class:`~repro.errors.QueryTimeoutError` past the deadline.

        Called at batch boundaries (scan flushes, coordinator re-assembly,
        executor consume loops): one ``None`` check when no budget is set,
        one timer read per batch when one is.
        """
        deadline = self.deadline
        if deadline is not None and self.timer() >= deadline:
            raise QueryTimeoutError(
                "statement exceeded its timeout budget and was cancelled "
                "at a batch boundary"
            )

    def observe(self, op: "Operator") -> NodeStats | None:
        """The operator's :class:`NodeStats` slot, or None when not analyzing."""
        if self.node_stats is None:
            return None
        stats = self.node_stats.get(id(op))
        if stats is None:
            stats = NodeStats()
            self.node_stats[id(op)] = stats
        return stats


class Operator:
    """Base class of physical plan nodes."""

    bindings: list[tuple[str, list[str]]]
    children: tuple["Operator", ...] = ()
    estimate: float = 0.0

    @property
    def binding_names(self) -> list[str]:
        return [name for name, _ in self.bindings]

    def _batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        raise NotImplementedError

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        """Stream output batches, transparently instrumented under ANALYZE."""
        if ctx.node_stats is None:
            return self._batches(ctx)
        return self._instrumented_batches(ctx)

    def _instrumented_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        source = self._batches(ctx)
        stats = ctx.observe(self)
        stats.loops += 1
        while True:
            started = engine_timer()
            try:
                batch = next(source)
            except StopIteration:
                stats.wall_seconds += engine_timer() - started
                return
            stats.wall_seconds += engine_timer() - started
            stats.batches += 1
            stats.rows += len(batch)
            yield batch

    def rows(self, ctx: ExecutionContext) -> Iterator[RowDict]:
        """Row-at-a-time compatibility shim over :meth:`batches`."""
        for batch in self.batches(ctx):
            yield from batch

    # -- columnar handshake ---------------------------------------------------

    def columnar_capable(self) -> bool:
        """Whether this operator can stream :class:`~repro.storage.colbatch.ColumnBatch`
        output at all (structural property, independent of settings).  Only
        heap scans and fully kernel-compiled filters over them qualify; every
        other operator needs row dicts and is the columnar→row boundary."""
        return False

    def supports_columnar(self, ctx: ExecutionContext) -> bool:
        """The runtime handshake: structural capability *and* the context's
        columnar/compile switches.  Consumers call :meth:`col_batches` only
        after this returns True."""
        return (
            ctx.columnar_kernels
            and ctx.compile_expressions
            and self.columnar_capable()
        )

    def _col_batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        raise NotImplementedError(f"{type(self).__name__} is not columnar-capable")

    def col_batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        """Stream columnar batches, transparently instrumented under ANALYZE."""
        if ctx.node_stats is None:
            return self._col_batches(ctx)
        return self._instrumented_col_batches(ctx)

    def _instrumented_col_batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        source = self._col_batches(ctx)
        stats = ctx.observe(self)
        stats.loops += 1
        while True:
            started = engine_timer()
            try:
                batch = next(source)
            except StopIteration:
                stats.wall_seconds += engine_timer() - started
                return
            stats.wall_seconds += engine_timer() - started
            stats.batches += 1
            stats.columnar_batches += 1
            stats.rows += len(batch)
            yield batch

    def label(self) -> str:
        raise NotImplementedError

    def explain_lines(
        self, depth: int = 0, node_stats: dict[int, NodeStats] | None = None
    ) -> list[str]:
        text = self.label()
        if node_stats is not None:
            stats = node_stats.get(id(self))
            text += f" ({stats.describe()})" if stats is not None else " (never executed)"
        lines = ["  " * depth + text]
        for child in self.children:
            lines.extend(child.explain_lines(depth + 1, node_stats))
        return lines


class EmptyRow(Operator):
    """The FROM-less relation: exactly one empty binding row (``SELECT 1``)."""

    def __init__(self):
        self.bindings = []
        self.estimate = 1.0

    def _batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        yield [{}]

    def label(self) -> str:
        return "Result"


class SeqScan(Operator):
    """Full scan of a heap table under one binding name."""

    def __init__(self, table, binding: str, estimate: float):
        self.table = table
        self.binding = binding
        self.bindings = [(binding, list(table.schema.column_names))]
        self.estimate = estimate

    def pairs(self, ctx: ExecutionContext) -> Iterator[tuple[int, dict]]:
        for row_id, row in self.table.scan():
            ctx.metrics.rows_scanned += 1
            yield row_id, row

    def _batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        yield from _scan_batches(self.table.scan(), self.binding, ctx)

    def columnar_capable(self) -> bool:
        return True

    def _col_batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        yield from _scan_col_batches(self.table, self.binding, ctx)

    def label(self) -> str:
        return f"SeqScan {_scan_target(self.table, self.binding)} [est={self.estimate:.0f}]"


class ParallelSeqScan(SeqScan):
    """Partitioned parallel heap scan.

    The heap is split into contiguous spans aligned to heap-page boundaries
    (:meth:`~repro.storage.table.Table.partition_spans`, walked via
    :meth:`~repro.storage.table.Table.scan_span`, so no two workers ever
    fault the same buffer-pool page) and each span is scanned by
    a worker thread that builds the span's batches; the coordinator then
    re-assembles the spans **in heap order**, so downstream operators (sorts,
    limits, DISTINCT) observe exactly the row order a :class:`SeqScan` would
    produce.  Workers never touch shared counters — rows are charged to
    ``ctx.metrics`` on the coordinator thread as each span's batches are
    emitted, keeping the metrics single-writer.  ``pairs`` is inherited from
    :class:`SeqScan`: DML-style consumers always stream sequentially.
    """

    def __init__(self, table, binding: str, estimate: float, workers: int):
        super().__init__(table, binding, estimate)
        self.workers = max(1, int(workers))

    def _batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        spans = self.table.partition_spans(self.workers)
        if len(spans) <= 1:
            yield from _scan_batches(self.table.scan(), self.binding, ctx)
            return
        binding = self.binding
        metrics = ctx.metrics
        batch_size = max(1, ctx.batch_size)
        table = self.table

        def scan_span(span: tuple[int, int]) -> list[RowBatch]:
            # Each worker walks its own heap span — concurrent read-only
            # iteration of the row dict is safe, and skipping to the span
            # start happens at C speed, far cheaper than materializing
            # per-partition pair lists on the coordinator.
            batches: list[RowBatch] = []
            batch: RowBatch = []
            for _, row in table.scan_span(*span):
                batch.append({binding: row})
                if len(batch) >= batch_size:
                    batches.append(batch)
                    batch = []
            if batch:
                batches.append(batch)
            return batches

        # Wait for every partition before emitting (a barrier, not a pipeline):
        # interleaving downstream Python work with still-running workers makes
        # the GIL ping-pong between coordinator and producers, which costs far
        # more than the materialization saves.  Re-assembly in submission
        # order == heap order keeps the stream deterministic.
        for batches in list(_scan_pool().map(scan_span, spans)):
            for batch in batches:
                ctx.tick()
                metrics.rows_scanned += len(batch)
                yield batch

    def _col_batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        spans = self.table.partition_spans(self.workers)
        if len(spans) <= 1:
            yield from _scan_col_batches(self.table, self.binding, ctx)
            return
        binding = self.binding
        schema = self.table.schema
        metrics = ctx.metrics
        batch_size = max(1, ctx.batch_size)
        table = self.table

        def scan_span(span: tuple[int, int]) -> list[list[dict]]:
            # Workers only collect stored-row references per span — column
            # extraction stays on the coordinator, where the ColumnBatch is
            # built as each span's chunks are emitted (same barrier +
            # heap-order re-assembly as the row path).
            chunks: list[list[dict]] = []
            chunk: list[dict] = []
            for _, row in table.scan_span(*span):
                chunk.append(row)
                if len(chunk) >= batch_size:
                    chunks.append(chunk)
                    chunk = []
            if chunk:
                chunks.append(chunk)
            return chunks

        for chunks in list(_scan_pool().map(scan_span, spans)):
            for chunk in chunks:
                ctx.tick()
                metrics.rows_scanned += len(chunk)
                metrics.columnar_batches += 1
                yield ColumnBatch(binding, schema, chunk)

    def label(self) -> str:
        return (
            f"ParallelSeqScan {_scan_target(self.table, self.binding)} "
            f"[workers={self.workers}, est={self.estimate:.0f}]"
        )


class IndexScan(Operator):
    """Equality probe of a hash index.

    ``value_expr`` is either a constant expression (planner-selected equality
    conjunct) or a column of the outer side when the scan is driven by an
    :class:`IndexLookupJoin` (``probe=True``).
    """

    def __init__(
        self,
        table,
        binding: str,
        column: str,
        value_expr: Expression,
        estimate: float,
        probe: bool = False,
    ):
        self.table = table
        self.binding = binding
        self.column = column
        self.value_expr = value_expr
        self.bindings = [(binding, list(table.schema.column_names))]
        self.estimate = estimate
        self.probe = probe

    def lookup_pairs(self, value: object, ctx: ExecutionContext):
        """Fetch ``(row_id, row)`` pairs whose indexed column equals ``value``.

        Equality must mean exactly what the engine's ``=`` means
        (:func:`~repro.storage.types.compare_values`), so the probe value is
        translated into hash keys first; when the comparison cannot be
        expressed as hash lookups (e.g. a boolean probed against a numeric
        column) the scan degrades to a filtered heap scan with identical
        semantics.
        """
        if value is None:
            return
        index = self.table.index_for(self.column)
        keys = (
            equality_probe_keys(value, self.table.schema.column(self.column).data_type)
            if index is not None
            else None
        )
        if keys is None:
            for row_id, row in self.table.scan():
                ctx.metrics.rows_scanned += 1
                if compare_values(row.get(self.column), value) == 0:
                    yield row_id, row
            return
        ctx.metrics.index_lookups += 1
        row_ids: set[int] = set()
        for key in keys:
            row_ids |= index.lookup(key)
        for row_id in sorted(row_ids):
            row = self.table.get(row_id)
            if row is None:
                continue
            ctx.metrics.rows_scanned += 1
            yield row_id, row

    def lookup_rows(self, value: object, ctx: ExecutionContext):
        for _, row in self.lookup_pairs(value, ctx):
            yield row

    def pairs(self, ctx: ExecutionContext) -> Iterator[tuple[int, dict]]:
        scope = Scope({}, parent=ctx.outer_scope)
        value = evaluate(self.value_expr, scope, ctx.run_subquery)
        yield from self.lookup_pairs(value, ctx)

    def _batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        binding = self.binding
        yield from _chunk(({binding: row} for _, row in self.pairs(ctx)), ctx)

    def label(self) -> str:
        condition = f"{self.column} = {format_expression(self.value_expr)}"
        return (
            f"IndexScan {_scan_target(self.table, self.binding)} "
            f"({condition}) [est={self.estimate:.0f}]"
        )


class RangeScan(Operator):
    """Ordered walk of a :class:`~repro.storage.indexes.SortedIndex`.

    ``low`` / ``high`` are constant bound expressions (None = unbounded);
    ``descending`` reverses the walk.  With both bounds absent the scan visits
    every row in index order — including NULL rows, placed where ORDER BY
    places them — which is what lets the planner drop an explicit sort.
    Bounded scans skip NULL rows, exactly as the range predicate would.
    """

    def __init__(
        self,
        table,
        binding: str,
        column: str,
        low: Expression | None,
        high: Expression | None,
        low_inclusive: bool,
        high_inclusive: bool,
        estimate: float,
        descending: bool = False,
    ):
        self.table = table
        self.binding = binding
        self.column = column
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.bindings = [(binding, list(table.schema.column_names))]
        self.estimate = estimate
        self.descending = descending

    def _bound_key(self, bound: Expression | None, ctx: ExecutionContext):
        """Evaluate a bound to its index key: (key, ok) with ok=False for NULL."""
        if bound is None:
            return None, True
        scope = Scope({}, parent=ctx.outer_scope)
        value = evaluate(bound, scope, ctx.run_subquery)
        if value is None:
            return None, False  # comparison with NULL is unknown: empty range
        data_type = self.table.schema.column(self.column).data_type
        key = range_probe_key(value, data_type)
        if key is None:
            raise _RangeKeyUnavailable(value)
        return key, True

    def pairs(self, ctx: ExecutionContext) -> Iterator[tuple[int, dict]]:
        index = self.table.sorted_index_for(self.column)
        if index is None:
            yield from self._fallback_pairs(ctx)
            return
        try:
            low_key, low_ok = self._bound_key(self.low, ctx)
            high_key, high_ok = self._bound_key(self.high, ctx)
        except _RangeKeyUnavailable:
            # The comparison semantics cannot be expressed as index keys
            # (planner normally prevents this); keep compare_values semantics.
            yield from self._fallback_pairs(ctx)
            return
        if not low_ok or not high_ok:
            return
        ctx.metrics.index_lookups += 1
        if self.low is None and self.high is None:
            row_ids = index.ordered_row_ids(descending=self.descending)
        else:
            row_ids = index.range_row_ids(
                low_key,
                high_key,
                self.low_inclusive,
                self.high_inclusive,
                descending=self.descending,
            )
        for row_id in row_ids:
            row = self.table.get(row_id)
            if row is None:
                continue
            ctx.metrics.rows_scanned += 1
            yield row_id, row

    def _fallback_pairs(self, ctx: ExecutionContext) -> Iterator[tuple[int, dict]]:
        """Heap scan honouring the bounds and the promised order."""
        scope = Scope({}, parent=ctx.outer_scope)
        low_value = evaluate(self.low, scope, ctx.run_subquery) if self.low is not None else None
        high_value = (
            evaluate(self.high, scope, ctx.run_subquery) if self.high is not None else None
        )
        if (self.low is not None and low_value is None) or (
            self.high is not None and high_value is None
        ):
            return
        matches = []
        for row_id, row in self.table.scan():
            ctx.metrics.rows_scanned += 1
            value = row.get(self.column)
            if self.low is not None:
                ordering = compare_values(value, low_value)
                if ordering is None or ordering < 0 or (ordering == 0 and not self.low_inclusive):
                    continue
            if self.high is not None:
                ordering = compare_values(value, high_value)
                if ordering is None or ordering > 0 or (ordering == 0 and not self.high_inclusive):
                    continue
            matches.append((row_id, row))
        unbounded = self.low is None and self.high is None
        matches.sort(
            key=lambda pair: sort_key(pair[1].get(self.column)),
            reverse=self.descending,
        )
        if unbounded and self.descending:
            # NULLs sort lowest ascending, so a reversed sort puts them first;
            # ORDER BY ... DESC wants them last.
            nulls = [pair for pair in matches if pair[1].get(self.column) is None]
            matches = [pair for pair in matches if pair[1].get(self.column) is not None] + nulls
        yield from matches

    def _batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        binding = self.binding
        yield from _chunk(({binding: row} for _, row in self.pairs(ctx)), ctx)

    def label(self) -> str:
        conditions = []
        if self.low is not None:
            op = ">=" if self.low_inclusive else ">"
            conditions.append(f"{self.column} {op} {format_expression(self.low)}")
        if self.high is not None:
            op = "<=" if self.high_inclusive else "<"
            conditions.append(f"{self.column} {op} {format_expression(self.high)}")
        if not conditions:
            conditions.append(f"ORDER BY {self.column}")
        detail = " AND ".join(conditions)
        if self.descending:
            detail += " DESC" if self.low is None and self.high is None else ", desc"
        return (
            f"RangeScan {_scan_target(self.table, self.binding)} "
            f"({detail}) [est={self.estimate:.0f}]"
        )


class _RangeKeyUnavailable(Exception):
    """A range bound cannot be expressed as a sorted-index key."""


class SubqueryScan(Operator):
    """A derived table ``(SELECT ...) alias``: the subplan runs through the
    executor (aggregation, ordering, ...) and its tuples are re-bound."""

    def __init__(self, plan, alias: str, estimate: float):
        self.plan = plan
        self.alias = alias
        self.bindings = [(alias, list(plan.output_columns))]
        self.children = (plan.root,)
        self.estimate = estimate

    def _batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        columns, tuples = ctx.run_select(self.plan)
        alias = self.alias
        yield from _chunk(
            ({alias: dict(zip(columns, values))} for values in tuples), ctx
        )

    def label(self) -> str:
        return f"SubqueryScan AS {self.alias} [est={self.estimate:.0f}]"


class Filter(Operator):
    """Batched conjunctive filter over a child operator.

    When every conjunct compiles (see :func:`compile_predicate`) the filter
    evaluates whole batches with plain closures; otherwise the entire conjunct
    list runs through the expression evaluator in original order, so
    evaluation-order-dependent behaviour (short-circuiting before an erroring
    predicate) is preserved.  Compilation happens once per operator instance
    (compiled closures read literal values per call, so re-binding a cached
    plan's parameters never stales the memo).
    """

    #: Memoized compile_conjuncts result (closures or None); _UNSET = not yet.
    _compiled: object = None

    def __init__(self, child: Operator, predicates: list[Expression], estimate: float):
        self.child = child
        self.predicates = list(predicates)
        self.bindings = child.bindings
        self.children = (child,)
        self.estimate = estimate
        self._compiled = _UNSET
        self._compiled_columnar = _UNSET

    def columnar_capable(self) -> bool:
        """Capable iff the child is and every conjunct compiles to a kernel
        (all-or-nothing, mirroring the row path's compile_conjuncts rule)."""
        if not self.child.columnar_capable():
            return False
        if self._compiled_columnar is _UNSET:
            self._compiled_columnar = compile_columnar_conjuncts(
                self.predicates, self.bindings
            )
        return self._compiled_columnar is not None

    def _col_batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        kernels = self._compiled_columnar  # set by supports_columnar/columnar_capable
        metrics = ctx.metrics
        stats = ctx.observe(self)
        for batch in self.child.col_batches(ctx):
            started = engine_timer()
            selection = apply_kernels(kernels, batch)
            elapsed = engine_timer() - started
            metrics.kernel_seconds += elapsed
            if stats is not None:
                stats.kernel_seconds += elapsed
            if selection is None:
                yield batch  # no conjuncts narrowed anything (empty chain)
            elif selection:
                yield batch.narrowed(selection)

    def _batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        if self.supports_columnar(ctx):
            # Columnar fast path with row-batch output: kernels filter the
            # batch while it is still columnar, and the {binding: row}
            # wrappers are materialized for the *survivors* only — the
            # RowBatch boundary the handshake promises row-consuming parents
            # (joins, sorts, uncompilable projections).
            for columnar in self._col_batches(ctx):
                kept = columnar.to_row_batch()
                if kept:
                    yield kept
            return
        checks = None
        if ctx.compile_expressions:
            if self._compiled is _UNSET:
                self._compiled = compile_conjuncts(self.predicates, self.bindings)
            checks = self._compiled
        if checks is not None:
            if len(checks) == 1:
                check = checks[0]
                for batch in self.child.batches(ctx):
                    kept = [row for row in batch if check(row)]
                    if kept:
                        yield kept
            else:
                for batch in self.child.batches(ctx):
                    kept = [
                        row for row in batch if all(check(row) for check in checks)
                    ]
                    if kept:
                        yield kept
            return
        outer = ctx.outer_scope
        run = ctx.run_subquery
        predicates = self.predicates
        for batch in self.child.batches(ctx):
            kept = []
            for row in batch:
                scope = Scope(row, parent=outer)
                if all(is_true(evaluate(p, scope, run)) for p in predicates):
                    kept.append(row)
            if kept:
                yield kept

    def label(self) -> str:
        predicates = " AND ".join(format_expression(p) for p in self.predicates)
        return f"Filter ({predicates})"


class HashJoin(Operator):
    """Equi-join: the estimated-smaller side is materialized into a hash table
    and the other side streams through it batch by batch."""

    #: Memoized (build_key, probe_key) getter pair; _UNSET = not yet compiled.
    _compiled_keys: object = None

    def __init__(
        self,
        left: Operator,
        right: Operator,
        pairs: list[tuple[ColumnRef, ColumnRef]],
        build_left: bool,
        estimate: float,
    ):
        self.left = left
        self.right = right
        self.pairs = list(pairs)
        self.build_left = build_left
        self.bindings = left.bindings + right.bindings
        self.children = (left, right)
        self.estimate = estimate
        self._compiled_keys = _UNSET

    def _batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        left_keys = [left for left, _ in self.pairs]
        right_keys = [right for _, right in self.pairs]
        if self.build_left:
            build, probe = self.left, self.right
            build_keys, probe_keys = left_keys, right_keys
        else:
            build, probe = self.right, self.left
            build_keys, probe_keys = right_keys, left_keys
        table: dict[tuple, list[RowDict]] = {}
        build_key = probe_key = None
        if ctx.compile_expressions:
            if self._compiled_keys is _UNSET:
                self._compiled_keys = (
                    compile_key_tuple(build_keys, build.bindings),
                    compile_key_tuple(probe_keys, probe.bindings),
                )
            build_key, probe_key = self._compiled_keys
        outer = ctx.outer_scope
        run = ctx.run_subquery
        for batch in build.batches(ctx):
            for row in batch:
                if build_key is not None:
                    key = build_key(row)
                else:
                    scope = Scope(row, parent=outer)
                    key = tuple(scope.resolve(column) for column in build_keys)
                if any(value is None for value in key):
                    continue
                table.setdefault(key, []).append(row)
        metrics = ctx.metrics
        batch_size = max(1, ctx.batch_size)
        out: RowBatch = []
        for batch in probe.batches(ctx):
            for row in batch:
                if probe_key is not None:
                    key = probe_key(row)
                else:
                    scope = Scope(row, parent=outer)
                    key = tuple(scope.resolve(column) for column in probe_keys)
                if any(value is None for value in key):
                    continue
                matches = table.get(key)
                if not matches:
                    continue
                metrics.rows_joined += len(matches)
                for match in matches:
                    combined = dict(row)
                    combined.update(match)
                    out.append(combined)
                if len(out) >= batch_size:
                    yield out
                    out = []
        if out:
            yield out

    def label(self) -> str:
        condition = " AND ".join(
            f"{left} = {right}" for left, right in self.pairs
        )
        side = "left" if self.build_left else "right"
        return f"HashJoin ({condition}) [build={side}, est={self.estimate:.0f}]"


class IndexLookupJoin(Operator):
    """Index nested-loop join: for each outer row, probe the inner table's
    hash index on the join key instead of scanning the inner table."""

    def __init__(
        self,
        outer: Operator,
        scan: IndexScan,
        outer_key: Expression,
        residual: list[Expression],
        estimate: float,
    ):
        self.outer = outer
        self.scan = scan
        self.outer_key = outer_key
        self.residual = list(residual)
        self.bindings = outer.bindings + scan.bindings
        self.children = (outer, scan)
        self.estimate = estimate
        #: Memoized (key getter, residual checks); _UNSET = not yet compiled.
        self._compiled_probe: object = _UNSET

    def _batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        key_getter = residual_checks = None
        if ctx.compile_expressions:
            if self._compiled_probe is _UNSET:
                self._compiled_probe = (
                    compile_column_getter(self.outer.bindings, self.outer_key)
                    if isinstance(self.outer_key, ColumnRef)
                    else None,
                    compile_conjuncts(self.residual, self.bindings),
                )
            key_getter, residual_checks = self._compiled_probe
        outer_scope = ctx.outer_scope
        run = ctx.run_subquery
        metrics = ctx.metrics
        batch_size = max(1, ctx.batch_size)
        # The probe-side scan never runs through batches(), so record its
        # ANALYZE actuals (rows fetched, probe loops) here.
        probe_stats = ctx.observe(self.scan)
        out: RowBatch = []
        for batch in self.outer.batches(ctx):
            for outer_row in batch:
                if key_getter is not None:
                    value = key_getter(outer_row)
                else:
                    scope = Scope(outer_row, parent=outer_scope)
                    value = evaluate(self.outer_key, scope, run)
                if value is None:
                    continue
                if probe_stats is not None:
                    probe_stats.loops += 1
                for inner_row in self.scan.lookup_rows(value, ctx):
                    if probe_stats is not None:
                        probe_stats.rows += 1
                    combined = dict(outer_row)
                    combined[self.scan.binding] = inner_row
                    if self.residual:
                        if residual_checks is not None:
                            if not all(check(combined) for check in residual_checks):
                                continue
                        else:
                            inner_scope = Scope(combined, parent=outer_scope)
                            if not all(
                                is_true(evaluate(p, inner_scope, run))
                                for p in self.residual
                            ):
                                continue
                    metrics.rows_joined += 1
                    out.append(combined)
                    if len(out) >= batch_size:
                        yield out
                        out = []
        if out:
            yield out

    def label(self) -> str:
        parts = [
            f"IndexLoopJoin ({self.scan.binding}.{self.scan.column} = "
            f"{format_expression(self.outer_key)})"
        ]
        if self.residual:
            residual = " AND ".join(format_expression(p) for p in self.residual)
            parts.append(f"filter ({residual})")
        return " ".join(parts) + f" [est={self.estimate:.0f}]"


class NestedLoopJoin(Operator):
    """Cross product (no usable equi-join conjunct); the right side is
    materialized once, the left side streams."""

    def __init__(self, left: Operator, right: Operator, estimate: float):
        self.left = left
        self.right = right
        self.bindings = left.bindings + right.bindings
        self.children = (left, right)
        self.estimate = estimate

    def _batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        right_rows = [row for batch in self.right.batches(ctx) for row in batch]
        metrics = ctx.metrics
        batch_size = max(1, ctx.batch_size)
        out: RowBatch = []
        for batch in self.left.batches(ctx):
            for left_row in batch:
                metrics.rows_joined += len(right_rows)
                for right_row in right_rows:
                    combined = dict(left_row)
                    combined.update(right_row)
                    out.append(combined)
                    if len(out) >= batch_size:
                        yield out
                        out = []
        if out:
            yield out

    def label(self) -> str:
        return f"NestedLoopJoin (cross) [est={self.estimate:.0f}]"


class OuterJoin(Operator):
    """LEFT or FULL outer join (RIGHT joins are swapped into LEFT by the
    planner).  Both sides materialize — outer joins need match bookkeeping."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        condition: Expression | None,
        join_type: str,
        estimate: float,
    ):
        self.left = left
        self.right = right
        self.condition = condition
        self.join_type = join_type
        self.bindings = left.bindings + right.bindings
        self.children = (left, right)
        self.estimate = estimate

    def _batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        yield from _chunk(self._join_rows(ctx), ctx)

    def _join_rows(self, ctx: ExecutionContext) -> Iterator[RowDict]:
        right_rows = list(self.right.rows(ctx))
        null_right = {
            name: {column: None for column in columns}
            for name, columns in self.right.bindings
        }
        matched_right: set[int] = set()
        for left_row in self.left.rows(ctx):
            matched = False
            for index, right_row in enumerate(right_rows):
                combined = dict(left_row)
                combined.update(right_row)
                scope = Scope(combined, parent=ctx.outer_scope)
                if self.condition is None or is_true(
                    evaluate(self.condition, scope, ctx.run_subquery)
                ):
                    matched = True
                    matched_right.add(index)
                    ctx.metrics.rows_joined += 1
                    yield combined
            if not matched:
                combined = dict(left_row)
                combined.update(null_right)
                ctx.metrics.rows_joined += 1
                yield combined
        if self.join_type == "FULL":
            null_left = {
                name: {column: None for column in columns}
                for name, columns in self.left.bindings
            }
            for index, right_row in enumerate(right_rows):
                if index not in matched_right:
                    combined = dict(null_left)
                    combined.update(right_row)
                    ctx.metrics.rows_joined += 1
                    yield combined

    def label(self) -> str:
        condition = (
            format_expression(self.condition) if self.condition is not None else "TRUE"
        )
        return f"{self.join_type.title()}OuterJoin ({condition}) [est={self.estimate:.0f}]"


# ---------------------------------------------------------------------------
# Vectorized aggregation
# ---------------------------------------------------------------------------


#: Sentinel for "no run started yet" in the sorted streaming path.
_NO_RUN = object()


class GroupAggregate(Operator):
    """Shared machinery of :class:`HashAggregate` / :class:`SortedGroupAggregate`.

    Aggregate operators are consumed through :meth:`groups`, which yields
    ``(representative row dict, finished aggregate values)`` pairs in
    first-seen group order — the executor's HAVING / projection / ORDER BY
    read the finished accumulator states instead of re-walking buffered row
    lists.  ``batches()`` is deliberately unimplemented: the planner places an
    aggregate only at the top of the pipeline, never under joins.

    Compiled artifacts (group-key and argument getters) are memoized on the
    operator instance, read only row-dict keys, and accumulators are created
    fresh per execution — all of which keeps a cached plan's parameter
    re-binding safe.
    """

    _name = "GroupAggregate"

    def __init__(
        self,
        child: Operator,
        group_exprs,
        collection: AggregateCollection,
        estimate: float,
        having: Expression | None = None,
    ):
        self.child = child
        self.group_exprs = list(group_exprs)
        self.collection = collection
        self.having = having
        self.bindings = child.bindings
        self.children = (child,)
        self.estimate = estimate  # estimated number of output groups
        self._compiled_group: object = _UNSET
        self._compiled_args: object = _UNSET

    # -- consumption ---------------------------------------------------------

    def groups(self, ctx: ExecutionContext):
        """Stream ``(representative, finished values)`` pairs, instrumented.

        Charges ``groups_emitted`` and the (inclusive, child included)
        aggregation wall time to ``ctx.metrics``; under EXPLAIN ANALYZE the
        operator's :class:`NodeStats` counts one row per emitted group.
        """
        stats = ctx.observe(self)
        if stats is not None:
            stats.loops += 1
            stats.batches += 1  # one logical batch of groups per execution
        metrics = ctx.metrics
        source = self._groups(ctx)
        while True:
            started = engine_timer()
            try:
                item = next(source)
            except StopIteration:
                elapsed = engine_timer() - started
                metrics.agg_seconds += elapsed
                if stats is not None:
                    stats.wall_seconds += elapsed
                return
            elapsed = engine_timer() - started
            metrics.agg_seconds += elapsed
            metrics.groups_emitted += 1
            if stats is not None:
                stats.wall_seconds += elapsed
                stats.rows += 1
            yield item

    def _groups(self, ctx: ExecutionContext):
        raise NotImplementedError

    # -- compiled helpers ----------------------------------------------------

    def _group_key_getter(self):
        """Memoized ``RowDict -> key tuple`` closure, or None (evaluate path)."""
        if self._compiled_group is _UNSET:
            if not self.group_exprs:
                self._compiled_group = lambda row: ()
            elif all(isinstance(expr, ColumnRef) for expr in self.group_exprs):
                self._compiled_group = compile_key_tuple(self.group_exprs, self.bindings)
            else:
                self._compiled_group = None
        return self._compiled_group

    def _spec_getters(self):
        """Memoized per-spec argument getters (None for COUNT(*)/fallback)."""
        if self._compiled_args is _UNSET:
            self._compiled_args = [
                compile_column_getter(self.bindings, spec.argument)
                if isinstance(spec.argument, ColumnRef)
                else None
                for spec in self.collection.specs
            ]
        return self._compiled_args

    def _extractors(self, ctx: ExecutionContext):
        """Per-spec ``row list -> values to accumulate`` callables."""
        getters = self._spec_getters()
        use_compiled = ctx.compile_expressions
        outer = ctx.outer_scope
        run = ctx.run_subquery
        extractors = []
        for spec, getter in zip(self.collection.specs, getters):
            if spec.argument is None:
                extractors.append(_rows_identity)  # COUNT(*) counts the rows
            elif use_compiled and getter is not None:
                extractors.append(lambda rows, _get=getter: [_get(row) for row in rows])
            else:
                extractors.append(
                    lambda rows, _arg=spec.argument: [
                        evaluate(_arg, Scope(row, parent=outer), run) for row in rows
                    ]
                )
        return extractors

    def _evaluated_key(self, row: RowDict, ctx: ExecutionContext) -> tuple:
        scope = Scope(row, parent=ctx.outer_scope)
        return tuple(
            hashable_value(evaluate(expr, scope, ctx.run_subquery))
            for expr in self.group_exprs
        )

    def _empty_input_group(self):
        """The single global-aggregate group an empty ungrouped input yields."""
        return {}, [spec.make().finish() for spec in self.collection.specs]

    def label(self) -> str:
        parts = [self._name]
        if self.group_exprs:
            keys = ", ".join(format_expression(expr) for expr in self.group_exprs)
            parts.append(f"[group by {keys}]")
        if self.having is not None:
            parts.append(f"having ({format_expression(self.having)})")
        parts.append(f"[est groups={self.estimate:.0f}]")
        return " ".join(parts)


class HashAggregate(GroupAggregate):
    """Hash-grouped vectorized aggregation.

    Consumes the child batch by batch: each batch is partitioned into
    per-key buckets with a compiled group-key getter, then every bucket
    updates its group's accumulators once per aggregate spec — each input row
    is touched exactly once per spec, never re-walked.

    Two fast paths beyond the generic batch loop:

    * **Fused raw scan** — when the child is just filters over a heap scan
      and every filter, group key, and aggregate argument compiles against
      bare heap rows, the operator iterates ``table.scan()`` directly,
      skipping the per-row ``{binding: row}`` wrapper allocation entirely.
      Disabled under EXPLAIN ANALYZE so child operators report honest actuals.
    * **Parallel partial aggregation** — when that heap scan is a
      :class:`ParallelSeqScan`, each partition span builds private per-group
      accumulators on a pool worker and the coordinator merges the partial
      states in span order: only O(groups) accumulator state crosses the
      barrier, not O(rows) row dicts.
    * **Columnar kernels** — the fused single-scan shape additionally runs
      columnar when the context allows it: the scan streams ColumnBatches,
      filter kernels produce selection vectors, groups are bucketed by
      column-value gather, and every accumulator consumes
      ``update_column(values, positions)`` — no per-row wrapper, bucket
      list, or gathered argument list is ever built.
    * **Process-pool partials** — when the planner sets ``process_partials``
      (big input, few groups, ``process_workers`` configured), the partial
      aggregation fans across **forked** workers instead of GIL-bound
      threads: each child re-opens the page file read-only
      (:meth:`~repro.storage.buffer_pool.PageStore.begin_forked_read`),
      aggregates its span, and pickles only its O(groups) accumulator
      states back through a pipe.  Any fork/pickle failure falls back to
      the in-process path with identical results.
    """

    _name = "HashAggregate"

    #: Fork fan-out chosen by the planner (1 = process lane off).
    process_partials: int = 1

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._compiled_raw: object = _UNSET
        self._compiled_columnar_agg: object = _UNSET

    def _groups(self, ctx: ExecutionContext):
        columnar = self._columnar_groups(ctx)
        if columnar is not None:
            yield from columnar
            return
        fused = self._pushdown_groups(ctx)
        if fused is not None:
            yield from fused
            return
        specs = self.collection.specs
        extractors = self._extractors(ctx)
        key_getter = self._group_key_getter() if ctx.compile_expressions else None
        group_exprs = self.group_exprs
        metrics = ctx.metrics
        states: dict[tuple, tuple[RowDict, list]] = {}
        order: list[tuple] = []
        for batch in self.child.batches(ctx):
            metrics.batches += 1
            buckets: dict[tuple, list[RowDict]] = {}
            if key_getter is not None:
                for row in batch:
                    key = key_getter(row)
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = bucket = []
                    bucket.append(row)
            else:
                for row in batch:
                    key = self._evaluated_key(row, ctx)
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = bucket = []
                    bucket.append(row)
            for key, bucket in buckets.items():
                state = states.get(key)
                if state is None:
                    state = states[key] = (bucket[0], [spec.make() for spec in specs])
                    order.append(key)
                accumulators = state[1]
                for accumulator, extract in zip(accumulators, extractors):
                    accumulator.update_batch(extract(bucket))
        if not group_exprs and not states:
            yield self._empty_input_group()
            return
        for key in order:
            representative, accumulators = states[key]
            yield representative, [acc.finish() for acc in accumulators]

    # -- columnar fused path ---------------------------------------------------

    def _columnar_compiled(self):
        if self._compiled_columnar_agg is _UNSET:
            self._compiled_columnar_agg = self._compile_columnar_agg()
        return self._compiled_columnar_agg

    def _compile_columnar_agg(self):
        """``(scan, kernels, key columns, arg columns)`` for the columnar
        fused path, or None.

        Requires the same Filter*→SeqScan chain as :meth:`_compile_raw` with
        every filter kernel-compilable and every group key / aggregate
        argument a locally resolvable column.  An exact :class:`SeqScan`
        only: a :class:`ParallelSeqScan` keeps the partial-aggregation lanes
        (thread or process), which beat single-coordinator columnar work on
        free-threaded builds.
        """
        filters: list[Filter] = []
        node = self.child
        while isinstance(node, Filter):
            filters.append(node)
            node = node.child
        if type(node) is not SeqScan:
            return None
        bindings = node.bindings
        kernels: list = []
        for filter_op in reversed(filters):
            compiled = compile_columnar_conjuncts(filter_op.predicates, bindings)
            if compiled is None:
                return None
            kernels.extend(compiled)
        if self.group_exprs:
            key_columns = resolve_columnar_columns(self.group_exprs, bindings)
            if key_columns is None:
                return None
        else:
            key_columns = []
        arg_columns: list = []
        for spec in self.collection.specs:
            if spec.argument is None:
                arg_columns.append(None)  # COUNT(*): positions only
            elif isinstance(spec.argument, ColumnRef):
                resolved = resolve_columnar_columns([spec.argument], bindings)
                if resolved is None:
                    return None
                arg_columns.append(resolved[0])
            else:
                return None
        return node, kernels, key_columns, arg_columns

    def _columnar_groups(self, ctx: ExecutionContext):
        """The fused columnar group stream, or None when the lane is off.

        Disabled under EXPLAIN ANALYZE for the same honesty reason as the
        raw path (bypassed Filter nodes would report "never executed") and
        when the planner chose the process lane (forked partials fan wider
        than one coordinator's kernels).
        """
        if (
            not ctx.columnar_kernels
            or not ctx.compile_expressions
            or ctx.node_stats is not None
            or self.process_partials > 1
        ):
            return None
        compiled = self._columnar_compiled()
        if compiled is None:
            return None
        return self._columnar_group_stream(ctx, compiled)

    def _columnar_group_stream(self, ctx: ExecutionContext, compiled):
        scan, kernels, key_columns, arg_columns = compiled
        specs = self.collection.specs
        metrics = ctx.metrics
        binding = scan.binding
        merged: dict = {}
        order: list = []
        for batch in scan.col_batches(ctx):
            metrics.batches += 1
            started = engine_timer()
            if kernels:
                selection = apply_kernels(kernels, batch)
                if selection is not None:
                    if not selection:
                        metrics.kernel_seconds += engine_timer() - started
                        continue
                    batch = batch.narrowed(selection)
            if key_columns:
                key_order, buckets = hash_group_keys(batch, key_columns)
            else:
                live = batch.selection
                if live is None:
                    live = range(len(batch.rows))
                key_order, buckets = [()], {(): list(live)}
            rows = batch.rows
            for key in key_order:
                positions = buckets[key]
                state = merged.get(key)
                if state is None:
                    state = merged[key] = (
                        rows[positions[0]],
                        [spec.make() for spec in specs],
                    )
                    order.append(key)
                accumulators = state[1]
                for accumulator, arg_column in zip(accumulators, arg_columns):
                    if arg_column is None:
                        # COUNT(*): positions stand in for the row list the
                        # raw path feeds — same length, never None.
                        accumulator.update_batch(positions)
                    else:
                        accumulator.update_column(
                            batch.column(arg_column).values(), positions
                        )
            metrics.kernel_seconds += engine_timer() - started
        if not self.group_exprs and not merged:
            yield self._empty_input_group()
            return
        for key in order:
            representative, accumulators = merged[key]
            yield {binding: representative}, [acc.finish() for acc in accumulators]

    # -- fused raw-row path ----------------------------------------------------

    def _raw_compiled(self):
        if self._compiled_raw is _UNSET:
            self._compiled_raw = self._compile_raw()
        return self._compiled_raw

    def _compile_raw(self):
        """``(scan, key getter, arg getters, checks)`` for the fused path, or
        None when any piece needs Scope/evaluate semantics."""
        filters: list[Filter] = []
        node = self.child
        while isinstance(node, Filter):
            filters.append(node)
            node = node.child
        if not isinstance(node, SeqScan):  # RangeScan/IndexScan keep batches()
            return None
        bindings = node.bindings
        checks: list = []
        # Innermost filter first: matches the pipeline's evaluation order
        # (compiled checks are side-effect-free, so this is purely cosmetic).
        for filter_op in reversed(filters):
            compiled = compile_conjuncts(
                filter_op.predicates, bindings, getter_factory=raw_column_getter
            )
            if compiled is None:
                return None
            checks.extend(compiled)
        if self.group_exprs:
            getters = []
            for expr in self.group_exprs:
                if not isinstance(expr, ColumnRef):
                    return None
                getter = raw_column_getter(bindings, expr)
                if getter is None:
                    return None
                getters.append(getter)
            if len(getters) == 1:
                # Scalar keys (internal to this path) beat 1-tuples on the
                # hot dict lookups.
                key_getter = getters[0]
            else:
                parts = tuple(getters)
                key_getter = lambda row, _parts=parts: tuple(g(row) for g in _parts)
        else:
            key_getter = _constant_key
        arg_getters: list = []
        for spec in self.collection.specs:
            if spec.argument is None:
                arg_getters.append(None)
            elif isinstance(spec.argument, ColumnRef):
                getter = raw_column_getter(bindings, spec.argument)
                if getter is None:
                    return None
                arg_getters.append(getter)
            else:
                return None
        return node, key_getter, arg_getters, checks

    def _pushdown_groups(self, ctx: ExecutionContext):
        if not ctx.compile_expressions or ctx.node_stats is not None:
            return None
        compiled = self._raw_compiled()
        if compiled is None:
            return None
        scan, key_getter, arg_getters, checks = compiled
        table, binding = scan.table, scan.binding
        specs = self.collection.specs
        partials = None
        if self.process_partials > 1 and hasattr(os, "fork"):
            fork_spans = table.partition_spans(self.process_partials)
            if len(fork_spans) > 1:
                partials = _forked_partials(
                    table, fork_spans, key_getter, arg_getters, checks, specs
                )
        if partials is None:
            spans = (
                table.partition_spans(scan.workers)
                if isinstance(scan, ParallelSeqScan)
                else []
            )
            if len(spans) > 1:
                partials = list(
                    _scan_pool().map(
                        lambda span: _raw_partial(
                            table.scan_span(*span),
                            key_getter,
                            arg_getters,
                            checks,
                            specs,
                        ),
                        spans,
                    )
                )
            else:
                partials = [
                    _raw_partial(table.scan(), key_getter, arg_getters, checks, specs)
                ]
        metrics = ctx.metrics
        merged: dict = {}
        order: list = []
        for span_order, span_states, scanned in partials:
            # The fused scan ran to completion inside the partial helpers, so
            # a timeout budget cancels at the span-merge boundary — the
            # coarsest batch boundary this lane has.
            ctx.tick()
            metrics.rows_scanned += scanned
            for key in span_order:
                entry = span_states[key]
                state = merged.get(key)
                if state is None:
                    merged[key] = entry
                    order.append(key)
                else:
                    for mine, theirs in zip(state[1], entry[1]):
                        mine.merge(theirs)
        if not self.group_exprs and not merged:
            return [self._empty_input_group()]
        return [
            ({binding: merged[key][0]}, [acc.finish() for acc in merged[key][1]])
            for key in order
        ]


class SortedGroupAggregate(GroupAggregate):
    """Streaming grouped aggregation over an index-ordered scan.

    Chosen by the planner when the child already streams rows ordered by the
    leading group key (an unbounded/bounded :class:`RangeScan` on that
    column) — the same run-boundary detection the PartialSort path uses.
    Because equal leading keys are adjacent, every group is fully contained
    in one run: the operator buffers only the current run, aggregates it at
    the run boundary, and emits those groups before reading on.  Memory is
    bounded by the largest run instead of the whole group table.
    """

    _name = "SortedGroupAggregate"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._compiled_lead: object = _UNSET

    def _lead_getter(self):
        if self._compiled_lead is _UNSET:
            lead = self.group_exprs[0]
            self._compiled_lead = (
                compile_column_getter(self.bindings, lead)
                if isinstance(lead, ColumnRef)
                else None
            )
        return self._compiled_lead

    def _groups(self, ctx: ExecutionContext):
        specs = self.collection.specs
        extractors = self._extractors(ctx)
        key_getter = self._group_key_getter() if ctx.compile_expressions else None
        lead_getter = self._lead_getter() if ctx.compile_expressions else None
        group_exprs = self.group_exprs
        lead_expr = group_exprs[0]
        outer = ctx.outer_scope
        run = ctx.run_subquery
        metrics = ctx.metrics
        run_states: dict[tuple, list[RowDict]] = {}
        run_order: list[tuple] = []
        current = _NO_RUN
        emitted = False
        for batch in self.child.batches(ctx):
            metrics.batches += 1
            for row in batch:
                if lead_getter is not None:
                    lead = lead_getter(row)
                else:
                    lead = evaluate(lead_expr, Scope(row, parent=outer), run)
                marker = sort_key(lead)
                if marker != current:
                    if run_order:
                        emitted = True
                        yield from self._finish_run(run_order, run_states, extractors, specs)
                        run_states = {}
                        run_order = []
                    current = marker
                if key_getter is not None:
                    key = key_getter(row)
                else:
                    key = self._evaluated_key(row, ctx)
                bucket = run_states.get(key)
                if bucket is None:
                    run_states[key] = bucket = []
                    run_order.append(key)
                bucket.append(row)
        if run_order:
            yield from self._finish_run(run_order, run_states, extractors, specs)
        elif not emitted and not group_exprs:
            yield self._empty_input_group()

    def _finish_run(self, run_order, run_states, extractors, specs):
        for key in run_order:
            bucket = run_states[key]
            accumulators = [spec.make() for spec in specs]
            for accumulator, extract in zip(accumulators, extractors):
                accumulator.update_batch(extract(bucket))
            yield bucket[0], [acc.finish() for acc in accumulators]


def _rows_identity(rows):
    return rows


def _constant_key(row):
    return ()


def _forked_partials(table, spans, key_getter, arg_getters, checks, specs):
    """Fan :func:`_raw_partial` across forked workers, one per span.

    Unlike the thread lane, forked children genuinely run in parallel under
    the GIL.  The compiled closures are inherited copy-on-write (they are
    unpicklable, so no task shipping); only the O(groups) result crosses
    back, pickled through a pipe.  Each child immediately drops to
    read-only storage access (:meth:`~repro.storage.buffer_pool.PageStore.begin_forked_read`:
    private page-file descriptor, eviction write-back disabled) and leaves
    via ``os._exit`` so no parent-owned resource (WAL, locks, atexit hooks)
    is ever touched.  Returns the partial list, or None on any fork, child,
    or unpickling failure — the caller then recomputes in-process, so the
    lane can only lose time, never correctness.
    """
    children: list[tuple[int, int]] = []
    try:
        for span in spans:
            read_fd, write_fd = os.pipe()
            pid = os.fork()
            if pid == 0:
                # Any exception unwinds into the finally, so the child
                # always leaves through os._exit — with status 1 unless the
                # whole span round-tripped; the parent treats a non-zero
                # status as "recompute in-process".
                status = 1
                try:
                    os.close(read_fd)
                    table.store.begin_forked_read()
                    result = _raw_partial(
                        table.scan_span(*span), key_getter, arg_getters, checks, specs
                    )
                    payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
                    with os.fdopen(write_fd, "wb") as sink:
                        sink.write(payload)
                    status = 0
                finally:
                    os._exit(status)
            os.close(write_fd)
            children.append((pid, read_fd))
    except OSError:
        for pid, read_fd in children:
            os.close(read_fd)
            os.waitpid(pid, 0)
        return None
    partials = []
    failed = False
    for pid, read_fd in children:
        with os.fdopen(read_fd, "rb") as source:
            payload = source.read()
        _, status = os.waitpid(pid, 0)
        if status != 0 or not payload:
            failed = True
            continue
        try:
            partials.append(pickle.loads(payload))
        except (pickle.UnpicklingError, EOFError, ValueError):
            failed = True
    return None if failed else partials


def _raw_partial(pairs, key_getter, arg_getters, checks, specs):
    """Aggregate one span of bare heap rows into per-group accumulator states.

    Returns ``(first-seen key order, {key: (first row, accumulators)},
    rows scanned)``.  Runs on a scan-pool worker for parallel partial
    aggregation: the span's rows never leave this function, only the
    accumulator states return to the coordinator for merging.
    """
    pending: dict = {}
    order: list = []
    scanned = 0
    if checks:
        for _, row in pairs:
            scanned += 1
            for check in checks:
                if not check(row):
                    break
            else:
                key = key_getter(row)
                bucket = pending.get(key)
                if bucket is None:
                    pending[key] = bucket = []
                    order.append(key)
                bucket.append(row)
    else:
        for _, row in pairs:
            scanned += 1
            key = key_getter(row)
            bucket = pending.get(key)
            if bucket is None:
                pending[key] = bucket = []
                order.append(key)
            bucket.append(row)
    states = {}
    for key in order:
        bucket = pending[key]
        accumulators = [spec.make() for spec in specs]
        for accumulator, getter in zip(accumulators, arg_getters):
            if getter is None:
                accumulator.update_batch(bucket)
            else:
                accumulator.update_batch([getter(row) for row in bucket])
        states[key] = (bucket[0], accumulators)
    return order, states, scanned


# ---------------------------------------------------------------------------
# Compiled predicates and getters (the batch fast path)
# ---------------------------------------------------------------------------


def resolve_binding_column(
    bindings: list[tuple[str, list[str]]], column: ColumnRef
) -> tuple[str, str] | None:
    """Resolve a column reference to ``(binding key, row-dict key)``.

    Mirrors :meth:`~repro.storage.expression.Scope.resolve`'s *local* rules
    against the operator's own bindings; returns None when the reference is
    not locally and unambiguously resolvable (outer-scope columns, select-list
    extras, ambiguous names, unknown aliases) — callers must then fall back to
    per-row Scope evaluation, which reproduces the full resolution (and
    error-reporting) semantics.
    """
    name = column.name.lower()
    if column.table:
        target = column.table.lower()
        for binding, columns in bindings:
            if binding.lower() == target:
                for col in columns:
                    if col.lower() == name:
                        return binding, col
                return None
        return None
    owner: tuple[str, str] | None = None
    for binding, columns in bindings:
        for col in columns:
            if col.lower() == name:
                if owner is not None:
                    return None  # ambiguous across bindings
                owner = (binding, col)
                break
    return owner


def compile_column_getter(
    bindings: list[tuple[str, list[str]]], column: ColumnRef
) -> Callable[[RowDict], object] | None:
    """A ``row -> value`` closure for a locally resolvable column, or None."""
    resolved = resolve_binding_column(bindings, column)
    if resolved is None:
        return None
    binding, key = resolved
    return lambda row: row[binding][key]


def raw_column_getter(
    bindings: list[tuple[str, list[str]]], column: ColumnRef
) -> Callable[[dict], object] | None:
    """Like :func:`compile_column_getter` but against *bare* heap rows.

    Used by :class:`HashAggregate`'s fused scan path, which iterates the
    table's stored row dicts directly instead of wrapping each in a
    ``{binding: row}`` dict; resolution rules are identical.
    """
    resolved = resolve_binding_column(bindings, column)
    if resolved is None:
        return None
    _, key = resolved
    return lambda row: row[key]


def compile_key_tuple(
    columns: list[ColumnRef], bindings: list[tuple[str, list[str]]]
) -> Callable[[RowDict], tuple] | None:
    """A ``row -> key tuple`` closure for hash-join keys; None unless every
    key column resolves locally."""
    resolved: list[tuple[str, str]] = []
    for column in columns:
        pair = resolve_binding_column(bindings, column)
        if pair is None:
            return None
        resolved.append(pair)
    if len(resolved) == 1:
        binding, key = resolved[0]
        return lambda row: (row[binding][key],)
    getters = tuple(resolved)
    return lambda row: tuple(row[binding][key] for binding, key in getters)


_COMPARISON_TESTS: dict[str, Callable[[int], bool]] = {
    "=": lambda ordering: ordering == 0,
    "<>": lambda ordering: ordering != 0,
    "<": lambda ordering: ordering < 0,
    "<=": lambda ordering: ordering <= 0,
    ">": lambda ordering: ordering > 0,
    ">=": lambda ordering: ordering >= 0,
}

_FLIPPED_COMPARISONS = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "<>": "<>"}


def compile_predicate(
    expr: Expression,
    bindings: list[tuple[str, list[str]]],
    getter_factory: Callable = compile_column_getter,
) -> Callable[[RowDict], bool] | None:
    """Compile a WHERE conjunct into a fast ``row -> passes`` check, or None.

    The compiled check must agree with ``is_true(evaluate(expr, scope))`` on
    every row the operator can produce, so only expressions whose semantics
    are fully reproducible without a Scope are compiled: comparisons between
    locally resolved columns and literals (or two columns), BETWEEN and IN
    over literals, LIKE with a literal pattern, and IS [NOT] NULL.  Unknown
    (NULL) outcomes map to False exactly as WHERE treats them.  Literal values
    are read *per call*, not captured at compile time, so cached plans whose
    :class:`~repro.sql.canonicalize.ParamLiteral` nodes are re-bound between
    executions stay correct.

    ``getter_factory`` selects the row representation: the default compiles
    against ``{binding: row}`` batch dicts, :func:`raw_column_getter` against
    bare heap rows (the aggregation pushdown).
    """
    if isinstance(expr, BinaryOp) and expr.op in _COMPARISON_TESTS:
        op = expr.op
        left, right = expr.left, expr.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            getter = getter_factory(bindings, left)
            if getter is None:
                return None
            test = _COMPARISON_TESTS[op]
            literal = right

            def check(row, _get=getter, _literal=literal, _test=test):
                ordering = compare_values(_get(row), _literal.value)
                return ordering is not None and _test(ordering)

            return check
        if isinstance(right, ColumnRef) and isinstance(left, Literal):
            getter = getter_factory(bindings, right)
            if getter is None:
                return None
            test = _COMPARISON_TESTS[_FLIPPED_COMPARISONS[op]]
            literal = left

            def check(row, _get=getter, _literal=literal, _test=test):
                ordering = compare_values(_get(row), _literal.value)
                return ordering is not None and _test(ordering)

            return check
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            left_get = getter_factory(bindings, left)
            right_get = getter_factory(bindings, right)
            if left_get is None or right_get is None:
                return None
            test = _COMPARISON_TESTS[op]

            def check(row, _left=left_get, _right=right_get, _test=test):
                ordering = compare_values(_left(row), _right(row))
                return ordering is not None and _test(ordering)

            return check
        return None
    if isinstance(expr, BinaryOp) and expr.op == "LIKE":
        if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
            getter = getter_factory(bindings, expr.left)
            if getter is None:
                return None
            literal = expr.right
            cache: dict[object, object] = {}

            def check(row, _get=getter, _literal=literal, _cache=cache):
                value = _get(row)
                pattern = _literal.value
                if value is None or pattern is None:
                    return False
                regex = _cache.get(pattern)
                if regex is None:
                    _cache.clear()  # one live pattern per (re-bindable) literal
                    regex = like_regex(str(pattern))
                    _cache[pattern] = regex
                return regex.fullmatch(str(value)) is not None

            return check
        return None
    if isinstance(expr, UnaryOp) and expr.op in ("IS NULL", "IS NOT NULL"):
        if not isinstance(expr.operand, ColumnRef):
            return None
        getter = getter_factory(bindings, expr.operand)
        if getter is None:
            return None
        if expr.op == "IS NULL":
            return lambda row, _get=getter: _get(row) is None
        return lambda row, _get=getter: _get(row) is not None
    if isinstance(expr, Between):
        if (
            isinstance(expr.expr, ColumnRef)
            and isinstance(expr.low, Literal)
            and isinstance(expr.high, Literal)
        ):
            getter = getter_factory(bindings, expr.expr)
            if getter is None:
                return None
            low, high, negated = expr.low, expr.high, expr.negated

            def check(row, _get=getter, _low=low, _high=high, _negated=negated):
                value = _get(row)
                low_cmp = compare_values(value, _low.value)
                high_cmp = compare_values(value, _high.value)
                if low_cmp is None or high_cmp is None:
                    return False  # unknown: WHERE drops the row
                inside = low_cmp >= 0 and high_cmp <= 0
                return (not inside) if _negated else inside

            return check
        return None
    if isinstance(expr, InList):
        if isinstance(expr.expr, ColumnRef) and all(
            isinstance(value, Literal) for value in expr.values
        ):
            getter = getter_factory(bindings, expr.expr)
            if getter is None:
                return None
            literals, negated = list(expr.values), expr.negated

            def check(row, _get=getter, _literals=literals, _negated=negated):
                value = _get(row)
                if value is None:
                    return False
                found = False
                saw_null = False
                for literal in _literals:
                    candidate = literal.value
                    if candidate is None:
                        saw_null = True
                        continue
                    if compare_values(value, candidate) == 0:
                        found = True
                        break
                if not found and saw_null:
                    return False  # unknown: WHERE drops the row
                return (not found) if _negated else found

            return check
        return None
    return None


def compile_conjuncts(
    predicates: list[Expression],
    bindings: list[tuple[str, list[str]]],
    getter_factory: Callable = compile_column_getter,
) -> list[Callable[[RowDict], bool]] | None:
    """Compile every conjunct or none.

    All-or-nothing keeps evaluation order identical to the row-at-a-time
    engine: a partially compiled list would reorder predicates around the
    evaluator's short-circuiting and could surface (or hide) evaluation
    errors the original order would not.
    """
    checks: list[Callable[[RowDict], bool]] = []
    for predicate in predicates:
        check = compile_predicate(predicate, bindings, getter_factory)
        if check is None:
            return None
        checks.append(check)
    return checks


# ---------------------------------------------------------------------------
# Probe-key translation (shared with the planner)
# ---------------------------------------------------------------------------


def equality_probe_keys(value: object, data_type: DataType) -> list | None:
    """Hash keys that reproduce ``compare_values`` equality for a column.

    Returns the keys to probe (possibly empty — provably no match), or None
    when the comparison semantics cannot be expressed as hash lookups and the
    caller must fall back to a ``compare_values`` scan.  Stored values are
    always coerced to ``data_type``, which is what makes the mapping exact.
    """
    if value is None:
        return []
    if isinstance(value, bool):
        # Against non-boolean columns, compare_values matches by truthiness —
        # that is a set of keys, not one.
        return [value] if data_type is DataType.BOOLEAN else None
    if isinstance(value, (int, float)):
        if data_type in (DataType.INTEGER, DataType.FLOAT):
            return [value]
        if data_type is DataType.TEXT:
            return [str(value)]  # compare_values falls back to str comparison
        return None
    if isinstance(value, str):
        if data_type is DataType.TEXT:
            return [value]
        if data_type is DataType.BOOLEAN:
            return [bool(value)]  # compare_values compares truthiness
        if data_type in (DataType.INTEGER, DataType.FLOAT):
            # compare_values compares str(stored) to the probe string, so the
            # probe matches only when it round-trips exactly ('2' does, '02'
            # and '2.00' do not).
            try:
                coerced = coerce_value(value, data_type)
            except SchemaError:
                return []
            return [coerced] if str(coerced) == value else []
    return None


def range_probe_key(value: object, data_type: DataType) -> tuple | None:
    """The sorted-index key that reproduces ``compare_values`` ordering.

    A :class:`~repro.storage.indexes.SortedIndex` orders by
    :func:`~repro.storage.types.sort_key` of the *stored* (coerced) values, so
    a probe is only valid when comparing the probe value against every stored
    value follows the same order as comparing their sort keys:

    * numeric probe vs numeric column — numeric order,
    * string probe vs TEXT column — string order,
    * numeric probe vs TEXT column — ``compare_values`` falls back to
      comparing ``str(stored)`` with ``str(probe)``, which is string order,
    * any probe vs BOOLEAN column — truthiness order,

    Returns None when the semantics cannot be expressed (e.g. a string probe
    against a numeric column compares decimal *strings*, which does not follow
    numeric index order) and the caller must fall back to a scan.
    """
    if value is None:
        return None
    if data_type is DataType.BOOLEAN:
        return sort_key(bool(value))
    if isinstance(value, bool):
        # Against non-boolean columns compare_values uses truthiness, which a
        # value-ordered index cannot serve.
        return None
    if isinstance(value, (int, float)):
        if data_type in (DataType.INTEGER, DataType.FLOAT):
            return sort_key(value)
        if data_type is DataType.TEXT:
            return sort_key(str(value))
        return None
    if isinstance(value, str):
        if data_type is DataType.TEXT:
            return sort_key(value)
        return None
    return None


def _chunk(rows: Iterator[RowDict], ctx: ExecutionContext) -> Iterator[RowBatch]:
    """Group a row iterator into batches of up to ``ctx.batch_size`` rows.

    The size is re-read after every batch: the executor shrinks it to the
    remaining LIMIT budget on streaming plans, so a short-circuited scan
    never pulls more source rows than the row-at-a-time engine would have.
    """
    batch_size = max(1, ctx.batch_size)
    batch: RowBatch = []
    for row in rows:
        batch.append(row)
        if len(batch) >= batch_size:
            ctx.tick()
            yield batch
            batch = []
            batch_size = max(1, ctx.batch_size)
    if batch:
        ctx.tick()
        yield batch


def _scan_batches(
    pairs: Iterator[tuple[int, dict]], binding: str, ctx: ExecutionContext
) -> Iterator[RowBatch]:
    """Build a heap scan's batches, charging ``rows_scanned`` per batch.

    Shared by :class:`SeqScan` and :class:`ParallelSeqScan`'s single-span
    fallback so the wrap/flush/metrics behaviour cannot diverge; like
    :func:`_chunk`, the batch size is re-read after every flush to honour the
    executor's shrinking LIMIT budget.
    """
    metrics = ctx.metrics
    batch_size = max(1, ctx.batch_size)
    batch: RowBatch = []
    for _, row in pairs:
        batch.append({binding: row})
        if len(batch) >= batch_size:
            ctx.tick()
            metrics.rows_scanned += len(batch)
            yield batch
            batch = []
            batch_size = max(1, ctx.batch_size)
    if batch:
        ctx.tick()
        metrics.rows_scanned += len(batch)
        yield batch


def _scan_col_batches(
    table, binding: str, ctx: ExecutionContext
) -> Iterator[ColumnBatch]:
    """Build a heap scan's columnar batches, charging metrics per batch.

    The columnar twin of :func:`_scan_batches`: same shrinking-LIMIT-budget
    batch sizing, same ``rows_scanned`` charging — but the rows go into a
    :class:`~repro.storage.colbatch.ColumnBatch` as bare stored dicts, so
    no ``{binding: row}`` wrapper is ever allocated on this path.  Rows
    arrive page-at-a-time through
    :meth:`~repro.storage.table.Table.scan_row_lists` (C-speed list builds
    and slices) rather than one generator resumption per row — at typical
    batch sizes the per-row feed is the scan's dominant cost.
    """
    metrics = ctx.metrics
    schema = table.schema
    batch_size = max(1, ctx.batch_size)
    buffer: list[dict] = []
    for page_rows in table.scan_row_lists():
        buffer.extend(page_rows)
        while len(buffer) >= batch_size:
            if len(buffer) == batch_size:
                chunk, buffer = buffer, []
            else:
                chunk = buffer[:batch_size]
                del buffer[:batch_size]
            ctx.tick()
            metrics.rows_scanned += len(chunk)
            metrics.columnar_batches += 1
            yield ColumnBatch(binding, schema, chunk)
            batch_size = max(1, ctx.batch_size)
    if buffer:
        ctx.tick()
        metrics.rows_scanned += len(buffer)
        metrics.columnar_batches += 1
        yield ColumnBatch(binding, schema, buffer)


def _scan_target(table, binding: str) -> str:
    if binding.lower() == table.name.lower():
        return table.name
    return f"{table.name} AS {binding}"
