"""Crash recovery: rebuild a database from its snapshot and WAL tail.

Opening a durable database (``Database.open(data_dir=...)``) runs through
here:

1. **Lock** the ``data_dir`` (an exclusive ``flock`` on its ``LOCK`` file —
   released by the kernel the moment the owner dies, so a SIGKILLed
   process never leaves a stale lock and concurrent openers cannot race),
2. **Load the latest valid snapshot** (:mod:`repro.storage.snapshot`) —
   catalog history, schemas, index definitions, heap rows, version counters,
3. **Replay the WAL tail** (:mod:`repro.storage.wal`): records with an LSN
   at or below the snapshot's are skipped (they are already inside it, which
   makes a crash between "snapshot renamed" and "log truncated" harmless),
   the rest are re-applied in order, and the scan stops cleanly at the first
   torn or corrupt record — exactly the committed prefix survives,
4. hand the writer the valid log length so the torn tail is truncated before
   anything new is appended.

Replay applies *logical* records through the same table code paths normal
execution uses (the tables' WAL hooks are not attached yet, so nothing is
re-logged), so indexes, statistics invalidation, and constraint bookkeeping
are rebuilt rather than trusted.
"""

from __future__ import annotations

import fcntl
import os
from dataclasses import dataclass

from repro.errors import DurabilityError, StorageError
from repro.obs.metrics import engine_timer
from repro.storage.snapshot import (
    SNAPSHOT_FILE_NAME,
    column_from_dict,
    load_snapshot,
    schema_from_dict,
)
from repro.storage.table import Table
from repro.storage.wal import WAL_FILE_NAME, WalRecord, read_wal

#: File name of the ownership lock inside a database's ``data_dir``.
LOCK_FILE_NAME = "LOCK"


@dataclass
class RecoveryReport:
    """What one recovery pass found and did."""

    data_dir: str = ""
    snapshot_loaded: bool = False
    snapshot_lsn: int = 0
    #: Records decoded from the log (valid prefix).
    wal_records_scanned: int = 0
    #: Records re-applied (LSN above the snapshot's).
    wal_records_applied: int = 0
    #: Records skipped because the snapshot already contained them.
    wal_records_skipped: int = 0
    #: Byte length of the log's valid prefix (the writer resumes here).
    wal_valid_length: int = 0
    torn_tail: bool = False
    torn_bytes_dropped: int = 0
    #: Highest LSN seen across snapshot and log (LSNs continue from here).
    last_lsn: int = 0
    elapsed_seconds: float = 0.0


# -- data_dir locking -----------------------------------------------------------


@dataclass
class DirectoryLock:
    """An exclusive ``flock`` on a ``data_dir``'s ``LOCK`` file.

    The kernel releases the lock the instant the owning process dies — even
    on SIGKILL — so there is no stale-lock state and no steal race: of any
    number of concurrent openers, exactly one ever holds it.  The file
    itself persists between runs (only the flock matters); its pid content
    is purely diagnostic, shown in the double-open error.
    """

    path: str
    fd: int | None


def acquire_lock(data_dir: str | os.PathLike) -> DirectoryLock:
    """Take exclusive ownership of ``data_dir``.

    Raises :class:`~repro.errors.DurabilityError` when another live database
    — in this process or any other — holds the directory.  A lock file left
    behind by a killed process carries no flock, so reopening after a crash
    just works.
    """
    data_dir = os.fspath(data_dir)
    path = os.path.join(data_dir, LOCK_FILE_NAME)
    fd = os.open(path, os.O_CREAT | os.O_RDWR)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        holder = _read_lock_pid(fd)
        os.close(fd)
        owner = "another database" if holder is None else f"process {holder}"
        raise DurabilityError(
            f"data_dir {data_dir!r} is already open by {owner}; "
            "close that Database first"
        ) from None
    os.ftruncate(fd, 0)
    os.write(fd, str(os.getpid()).encode("ascii"))
    return DirectoryLock(path=path, fd=fd)


def release_lock(lock: DirectoryLock) -> None:
    """Release a lock taken by :func:`acquire_lock` (idempotent).

    The file stays on disk — unlinking it would race a concurrent opener
    that already holds an fd to the old inode; closing the fd alone drops
    the flock atomically.
    """
    if lock.fd is None:
        return
    try:
        fcntl.flock(lock.fd, fcntl.LOCK_UN)
    except OSError:
        pass
    os.close(lock.fd)
    lock.fd = None


def _read_lock_pid(fd: int) -> int | None:
    try:
        return int(os.pread(fd, 64, 0).decode("ascii").strip())
    except (OSError, ValueError):
        return None


# -- recovery -----------------------------------------------------------------------


def recover(database, data_dir: str | os.PathLike) -> RecoveryReport:
    """Rebuild ``database`` (a fresh, empty instance) from ``data_dir``.

    Loads the snapshot, replays the WAL tail, and reports what happened.
    The caller attaches the WAL writer afterwards (resuming at
    ``report.wal_valid_length`` / ``report.last_lsn``).
    """
    start = engine_timer()
    data_dir = os.fspath(data_dir)
    report = RecoveryReport(data_dir=data_dir)

    snapshot = load_snapshot(os.path.join(data_dir, SNAPSHOT_FILE_NAME))
    if snapshot is not None:
        _restore_snapshot(database, snapshot)
        report.snapshot_loaded = True
        report.snapshot_lsn = int(snapshot.get("lsn", 0))

    wal = read_wal(os.path.join(data_dir, WAL_FILE_NAME))
    report.wal_records_scanned = len(wal.records)
    report.wal_valid_length = wal.valid_length
    report.torn_tail = wal.torn_tail
    report.torn_bytes_dropped = wal.bytes_dropped
    for record in wal.records:
        if record.lsn <= report.snapshot_lsn:
            report.wal_records_skipped += 1
            continue
        _apply(database, record)
        report.wal_records_applied += 1

    report.last_lsn = max(report.snapshot_lsn, wal.last_lsn)
    report.elapsed_seconds = engine_timer() - start
    return report


def _restore_snapshot(database, snapshot: dict) -> None:
    """Load a verified checkpoint payload (either format) into a fresh
    database."""
    incremental = int(snapshot.get("format", 1)) >= 2
    schemas = []
    for entry in snapshot["tables"]:
        schema = schema_from_dict(entry["schema"])
        schemas.append(schema)
        if incremental:
            table = Table(
                schema,
                store=database._store,
                page_slots=int(entry.get("page_slots", 1)),
            )
            # Attach the on-disk heap pages first (checksums verified as the
            # chains are walked), then rebuild the derived structures from
            # them — indexes are never checkpointed.
            for ordinal, head_frame, live in entry["pages"]:
                page_id = database._store.adopt_chain(int(head_frame))
                table.restore_page(int(ordinal), page_id, int(live))
            for index in entry["indexes"]:
                table.create_index(
                    index["name"],
                    index["column"],
                    unique=index["unique"],
                    kind=index["kind"],
                )
            table.rebuild_indexes()
        else:
            table = Table(schema, store=database._store)
            for index in entry["indexes"]:
                table.create_index(
                    index["name"],
                    index["column"],
                    unique=index["unique"],
                    kind=index["kind"],
                )
            for row_id, row in entry["rows"]:
                table.restore_row(int(row_id), row)
        table.restore_counters(
            next_row_id=int(entry["next_row_id"]),
            version=int(entry["version"]),
            schema_version=int(entry["schema_version"]),
        )
        database._tables[schema.name.lower()] = table
    catalog = snapshot.get("catalog", {})
    database.catalog.restore(
        schemas,
        changes=catalog.get("changes", []),
        version=int(catalog.get("version", 0)),
    )


def _apply(database, record: WalRecord) -> None:
    """Re-apply one logical WAL record; wraps failures with the LSN."""
    data = record.data
    try:
        op = data["op"]
        if op == "insert":
            database.table(data["tbl"]).restore_row(int(data["rid"]), data["row"])
        elif op == "update":
            database.table(data["tbl"]).update(int(data["rid"]), data["set"])
        elif op == "delete":
            database.table(data["tbl"]).delete(int(data["rid"]))
        elif op == "create_index":
            database.table(data["tbl"]).create_index(
                data["name"],
                data["column"],
                unique=data["unique"],
                kind=data["kind"],
            )
        elif op == "create_table":
            database.create_table(
                schema_from_dict(data["schema"]), timestamp=data.get("ts")
            )
        elif op == "drop_table":
            database.drop_table(data["tbl"], timestamp=data.get("ts"))
        elif op == "alter_table":
            column = (
                None if data.get("column") is None else column_from_dict(data["column"])
            )
            database.alter_table(
                data["tbl"],
                data["action"],
                column=column,
                column_name=data.get("column_name"),
                new_name=data.get("new_name"),
                timestamp=data.get("ts"),
            )
        else:
            raise DurabilityError(f"unknown WAL op {op!r}")
    except DurabilityError:
        raise
    except (StorageError, KeyError, TypeError, ValueError, OSError) as exc:
        # The concrete ways a logical record can fail to apply: engine-level
        # rejection (CatalogError/SchemaError/IntegrityError/ExecutionError),
        # a malformed record payload (KeyError/TypeError/ValueError from the
        # dict accesses and coercions above), or the filesystem.  Anything
        # else — a genuine engine bug — must surface as itself, not be
        # laundered into a DurabilityError.
        raise DurabilityError(
            f"WAL replay failed at lsn {record.lsn} ({data.get('op')!r} on "
            f"{data.get('tbl', data.get('schema', {}).get('name', '?'))!r}): {exc}"
        ) from exc
