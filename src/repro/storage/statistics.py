"""Table statistics: histograms, reservoir samples, selectivity estimation.

Two CQMS requirements motivate this module:

* the Query Profiler stores *runtime* query features — result cardinality and
  output samples — and the paper notes the output-summary problem "is closely
  related to selectivity estimation [16] and standard approaches exist
  including building histograms or sampling" (Section 4.1);
* the Query Maintenance component must detect "significant changes in data
  distribution" that invalidate stored statistics (Section 4.4), which we do
  by comparing histogram snapshots.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.storage.types import sort_key

#: Default number of buckets in an equi-width histogram.
DEFAULT_BUCKETS = 16

#: Default reservoir sample size.
DEFAULT_SAMPLE_SIZE = 64


@dataclass
class Histogram:
    """An equi-width histogram over a numeric column (NULLs counted apart)."""

    low: float
    high: float
    counts: list[int]
    null_count: int = 0

    @property
    def total(self) -> int:
        return sum(self.counts) + self.null_count

    @classmethod
    def build(cls, values: list, buckets: int = DEFAULT_BUCKETS) -> "Histogram | None":
        """Build a histogram from a column's values; None for non-numeric columns."""
        numeric = [v for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)]
        null_count = sum(1 for v in values if v is None)
        if not numeric:
            return None
        low, high = float(min(numeric)), float(max(numeric))
        counts = [0] * buckets
        width = (high - low) / buckets if high > low else 1.0
        if width <= 0.0:
            width = 1.0  # a subnormal spread can underflow the bucket width
        for value in numeric:
            index = int((float(value) - low) / width)
            counts[min(index, buckets - 1)] += 1
        return cls(low=low, high=high, counts=counts, null_count=null_count)

    def estimate_selectivity(self, op: str, constant: float) -> float:
        """Estimate the fraction of rows satisfying ``column op constant``."""
        populated = sum(self.counts)
        if populated == 0:
            return 0.0
        buckets = len(self.counts)
        width = (self.high - self.low) / buckets if self.high > self.low else 1.0
        if width <= 0.0:
            width = 1.0
        if op == "=":
            return self._equal_fraction(constant, populated, width)
        if op == "<":
            return self._cumulative_fraction(constant, populated, width, inclusive=False)
        if op == "<=":
            return self._cumulative_fraction(constant, populated, width, inclusive=True)
        if op == ">":
            return max(
                0.0,
                1.0 - self._cumulative_fraction(constant, populated, width, inclusive=True),
            )
        if op == ">=":
            return max(
                0.0,
                1.0 - self._cumulative_fraction(constant, populated, width, inclusive=False),
            )
        if op == "<>":
            return 1.0 - self.estimate_selectivity("=", constant)
        return 0.33

    def _equal_fraction(self, constant: float, populated: int, width: float) -> float:
        """Estimated fraction of rows exactly equal to ``constant``."""
        if constant < self.low or constant > self.high:
            return 0.0
        buckets = len(self.counts)
        index = min(int((constant - self.low) / width), buckets - 1)
        # Assume uniformity inside the bucket with ~10 distinct values.
        return self.counts[index] / populated / 10.0

    def _cumulative_fraction(
        self, constant: float, populated: int, width: float, inclusive: bool
    ) -> float:
        """P(value <= constant) when ``inclusive`` else P(value < constant).

        The boundary value itself is worth roughly one bucket-tenth of mass
        (the same heuristic the ``=`` estimate uses), which is what makes
        ``<`` and ``<=`` — and hence BETWEEN versus strict ranges — cost
        differently.
        """
        equal = self._equal_fraction(constant, populated, width)
        if constant < self.low:
            return 0.0
        if constant == self.low:
            return equal if inclusive else 0.0
        if constant > self.high:
            return 1.0
        if constant == self.high:
            return 1.0 if inclusive else max(0.0, 1.0 - equal)
        position = (constant - self.low) / width if width else 0.0
        full_buckets = int(position)
        fraction_in_bucket = position - full_buckets
        count = sum(self.counts[:full_buckets])
        if full_buckets < len(self.counts):
            count += self.counts[full_buckets] * fraction_in_bucket
        base = count / populated
        return min(1.0, base + equal) if inclusive else base

    def distance(self, other: "Histogram") -> float:
        """Total-variation-style distance in [0, 1] between two histograms.

        Used by Query Maintenance to decide whether a column's distribution
        has changed enough to invalidate stored runtime statistics.
        """
        if self.total == 0 or other.total == 0:
            return 1.0 if self.total != other.total else 0.0
        # Resample both onto a common grid spanning both ranges.
        low = min(self.low, other.low)
        high = max(self.high, other.high)
        grid = 32
        mine = self._resample(low, high, grid)
        theirs = other._resample(low, high, grid)
        return 0.5 * sum(abs(a - b) for a, b in zip(mine, theirs))

    def _resample(self, low: float, high: float, grid: int) -> list[float]:
        populated = sum(self.counts)
        if populated == 0:
            return [0.0] * grid
        result = [0.0] * grid
        width = (high - low) / grid if high > low else 1.0
        if width <= 0.0:
            width = 1.0
        own_width = (self.high - self.low) / len(self.counts) if self.high > self.low else 1.0
        if own_width <= 0.0:
            own_width = 1.0
        for index, count in enumerate(self.counts):
            center = self.low + (index + 0.5) * own_width
            target = int((center - low) / width) if width else 0
            result[min(max(target, 0), grid - 1)] += count / populated
        return result


@dataclass
class ReservoirSample:
    """A fixed-size uniform random sample maintained incrementally."""

    capacity: int = DEFAULT_SAMPLE_SIZE
    seen: int = 0
    items: list = field(default_factory=list)
    _rng: random.Random = field(default_factory=lambda: random.Random(0), repr=False)

    def add(self, item) -> None:
        self.seen += 1
        if len(self.items) < self.capacity:
            self.items.append(item)
            return
        index = self._rng.randint(0, self.seen - 1)
        if index < self.capacity:
            self.items[index] = item

    def extend(self, items) -> None:
        for item in items:
            self.add(item)


@dataclass
class ColumnStatistics:
    """Statistics for one column."""

    name: str
    distinct_count: int = 0
    null_count: int = 0
    histogram: Histogram | None = None
    most_common: list[tuple[object, int]] = field(default_factory=list)


@dataclass
class TableStatistics:
    """Statistics for one table: row count plus per-column statistics."""

    table: str
    row_count: int = 0
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    @classmethod
    def compute(cls, table_name: str, rows: list[dict], buckets: int = DEFAULT_BUCKETS) -> "TableStatistics":
        """Compute statistics from a table's rows."""
        stats = cls(table=table_name, row_count=len(rows))
        if not rows:
            return stats
        for column in rows[0]:
            values = [row[column] for row in rows]
            frequencies: dict[object, int] = {}
            for value in values:
                if value is not None:
                    frequencies[value] = frequencies.get(value, 0) + 1
            most_common = sorted(frequencies.items(), key=lambda kv: (-kv[1], str(kv[0])))[:8]
            stats.columns[column.lower()] = ColumnStatistics(
                name=column,
                distinct_count=len(frequencies),
                null_count=sum(1 for value in values if value is None),
                histogram=Histogram.build(values, buckets=buckets),
                most_common=most_common,
            )
        return stats

    def selectivity(self, column: str, op: str, constant) -> float:
        """Estimate selectivity of ``column op constant`` against this table."""
        column_stats = self.columns.get(column.lower())
        if column_stats is None or self.row_count == 0:
            return 0.33
        if op in ("IN", "NOT IN") and isinstance(constant, (list, tuple)):
            per_value = max(column_stats.distinct_count, 1)
            fraction = min(1.0, len(constant) / per_value)
            return fraction if op == "IN" else 1.0 - fraction
        if isinstance(constant, (int, float)) and column_stats.histogram is not None:
            return column_stats.histogram.estimate_selectivity(op, float(constant))
        if op == "=":
            return 1.0 / max(column_stats.distinct_count, 1)
        if op == "<>":
            return 1.0 - 1.0 / max(column_stats.distinct_count, 1)
        return 0.33

    def range_selectivity(
        self,
        column: str,
        low,
        high,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        """Estimate the fraction of rows with ``low (<|<=) column (<|<=) high``.

        Used by the planner to cost a ``RangeScan``: the estimate is the
        difference of the histogram's cumulative fractions at the two bounds
        (None = unbounded), scaled down by the column's NULL fraction since
        NULL rows never satisfy a range predicate.
        """
        column_stats = self.columns.get(column.lower())
        if column_stats is None or self.row_count == 0:
            return 0.33
        sides = (low is not None) + (high is not None)
        if sides == 0:
            return 1.0
        histogram = column_stats.histogram

        def _numeric(value) -> bool:
            return isinstance(value, (int, float)) and not isinstance(value, bool)

        if histogram is None or (low is not None and not _numeric(low)) or (
            high is not None and not _numeric(high)
        ):
            return 0.33 ** sides
        upper = (
            1.0
            if high is None
            else histogram.estimate_selectivity("<=" if high_inclusive else "<", float(high))
        )
        lower = (
            0.0
            if low is None
            else histogram.estimate_selectivity("<" if low_inclusive else "<=", float(low))
        )
        fraction = max(upper - lower, 0.0)
        populated = max(self.row_count - column_stats.null_count, 0)
        return min(1.0, fraction * populated / self.row_count)

    def drift(self, other: "TableStatistics") -> float:
        """Aggregate distribution drift between two snapshots, in [0, 1].

        The maximum histogram distance over shared numeric columns, combined
        with the relative change in row count.  Query Maintenance compares the
        result against a configurable threshold.
        """
        row_drift = 0.0
        if max(self.row_count, other.row_count) > 0:
            row_drift = abs(self.row_count - other.row_count) / max(
                self.row_count, other.row_count
            )
        histogram_drift = 0.0
        for name, column_stats in self.columns.items():
            other_stats = other.columns.get(name)
            if other_stats is None:
                continue
            if column_stats.histogram is not None and other_stats.histogram is not None:
                histogram_drift = max(
                    histogram_drift, column_stats.histogram.distance(other_stats.histogram)
                )
        return min(1.0, max(row_drift, histogram_drift))


def partition_spans(total: int, partitions: int) -> list[tuple[int, int]]:
    """Boundaries of up to ``partitions`` contiguous equal-ish slices of
    ``total`` items, as half-open ``(start, stop)`` pairs.

    The first ``total % partitions`` slices carry one extra item so the
    largest and smallest slice differ by at most one row — balanced work for
    the parallel-scan workers.  Fewer (possibly zero) spans are returned when
    there are fewer items than partitions; empty spans are never produced.
    """
    if total <= 0 or partitions <= 0:
        return []
    partitions = min(partitions, total)
    base, extra = divmod(total, partitions)
    spans: list[tuple[int, int]] = []
    start = 0
    for index in range(partitions):
        stop = start + base + (1 if index < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


def group_count_estimate(distinct_counts: list[float], input_rows: float) -> float:
    """Estimated GROUP BY output cardinality from per-key distinct counts.

    The product of the keys' distinct counts assumes key independence (the
    textbook estimate), capped at the input row estimate — a group cannot
    exist without at least one input row — and floored at one group.
    """
    product = 1.0
    for count in distinct_counts:
        product *= max(count, 1.0)
    return max(1.0, min(product, max(input_rows, 1.0)))


def join_key_overlap(left: ColumnStatistics | None, right: ColumnStatistics | None) -> tuple[float, float]:
    """Fractions of each side's rows whose join-key value can possibly match.

    Returns ``(left_fraction, right_fraction)``: the histogram-estimated share
    of each column's rows that fall inside the intersection of the two
    columns' value ranges.  Disjoint ranges return ``(0, 0)`` (the equi-join
    is provably near-empty); a missing histogram on either side returns
    ``(1, 1)`` (no evidence, assume full overlap).  The planner multiplies
    these into its join fanout estimate so joins between partially
    overlapping key domains stop being costed as if every key matched.
    """
    if left is None or right is None:
        return 1.0, 1.0
    left_hist, right_hist = left.histogram, right.histogram
    if left_hist is None or right_hist is None:
        return 1.0, 1.0
    low = max(left_hist.low, right_hist.low)
    high = min(left_hist.high, right_hist.high)
    if low > high:
        return 0.0, 0.0

    def _fraction(histogram: Histogram) -> float:
        inside = histogram.estimate_selectivity(
            "<=", high
        ) - histogram.estimate_selectivity("<", low)
        return min(1.0, max(inside, 0.0))

    return _fraction(left_hist), _fraction(right_hist)


def summarize_output(
    rows: list[tuple],
    columns: list[str],
    execution_time: float,
    base_budget: int = DEFAULT_SAMPLE_SIZE,
    seconds_per_extra_row: float = 0.05,
    max_budget: int = 10_000,
) -> list[tuple]:
    """Adaptive output summarization (paper Section 4.1, "Profiling query results").

    The allowed summary size grows with the query's execution time: a query
    that took hours but produced ten rows is stored in full, while a fast
    query with millions of rows is down-sampled to the base budget.
    """
    budget = base_budget + int(execution_time / seconds_per_extra_row)
    budget = min(budget, max_budget)
    if len(rows) <= budget:
        return list(rows)
    rng = random.Random(len(rows) * 2654435761 % (2**31))
    sample = ReservoirSample(capacity=budget, _rng=rng)
    sample.extend(rows)
    return sorted(sample.items, key=lambda row: tuple(sort_key(v) for v in row))


def entropy(counts: list[int]) -> float:
    """Shannon entropy of a count vector (used in workload diagnostics)."""
    total = sum(counts)
    if total == 0:
        return 0.0
    result = 0.0
    for count in counts:
        if count > 0:
            p = count / total
            result -= p * math.log2(p)
    return result
