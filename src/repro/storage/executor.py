"""SQL executor.

Executes parsed statements against the tables owned by a
:class:`~repro.storage.database.Database`.  The SELECT pipeline implements a
small but real query processor:

* predicate pushdown of single-table conjuncts,
* hash joins for equi-join conjuncts (essential for the CQMS meta-queries,
  which join the ``Attributes`` feature relation with itself as in Figure 1),
* nested-loop fallback and LEFT/RIGHT outer joins,
* grouping and aggregation (COUNT/SUM/AVG/MIN/MAX, DISTINCT),
* HAVING, ORDER BY (including select-list aliases), DISTINCT, LIMIT/OFFSET,
* correlated and uncorrelated subqueries (IN / EXISTS / scalar).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.storage.expression import Scope, evaluate, is_true
from repro.storage.types import sort_key
from repro.sql.ast_nodes import (
    BinaryOp,
    Between,
    CaseExpression,
    ColumnRef,
    ExistsSubquery,
    Expression,
    FromItem,
    FunctionCall,
    InList,
    InSubquery,
    Join,
    Literal,
    ScalarSubquery,
    SelectItem,
    SelectStatement,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
)


@dataclass
class RelationData:
    """An intermediate relation: an ordered binding list plus its rows.

    ``bindings`` maps binding name → ordered column names; ``rows`` are
    dictionaries binding name → row dict.
    """

    bindings: list[tuple[str, list[str]]]
    rows: list[dict[str, dict[str, object]]]

    @property
    def binding_names(self) -> list[str]:
        return [name for name, _ in self.bindings]


@dataclass
class ExecutorMetrics:
    """Counters describing the work done by one statement execution."""

    rows_scanned: int = 0
    rows_joined: int = 0
    rows_output: int = 0


class Executor:
    """Executes statements against a table provider.

    ``table_provider`` must expose ``table(name) -> Table`` and
    ``catalog`` (used only for error messages here; DDL is handled by the
    Database facade, not the executor).
    """

    def __init__(self, table_provider):
        self._provider = table_provider
        self.metrics = ExecutorMetrics()

    # -- public entry points --------------------------------------------------

    def execute_select(
        self, statement: SelectStatement, outer_scope: Scope | None = None
    ) -> tuple[list[str], list[tuple]]:
        """Run a SELECT and return ``(column_names, rows)``."""
        self.metrics = ExecutorMetrics()
        return self._select(statement, outer_scope)

    # -- SELECT pipeline --------------------------------------------------------

    def _select(
        self, statement: SelectStatement, outer_scope: Scope | None
    ) -> tuple[list[str], list[tuple]]:
        relation, residual = self._compile_from(statement, outer_scope)
        filtered = (
            self._filter_relation(relation, residual, outer_scope) if residual else relation
        )

        has_aggregates = self._statement_has_aggregates(statement)
        if statement.group_by or has_aggregates:
            columns, rows = self._aggregate(statement, filtered, outer_scope)
        else:
            columns, rows = self._project(statement, filtered, outer_scope)
            rows = self._order_rows(statement, filtered, rows, columns, outer_scope)
        if statement.distinct:
            rows = _distinct(rows)
        rows = _apply_limit(rows, statement.limit, statement.offset)
        self.metrics.rows_output = len(rows)
        return columns, rows

    # -- FROM clause -----------------------------------------------------------

    def _compile_from(
        self, statement: SelectStatement, outer_scope: Scope | None
    ) -> tuple[RelationData, list[Expression]]:
        """Compile the FROM clause; returns the relation and residual conjuncts.

        Residual conjuncts are WHERE conjuncts that could not be pushed down or
        applied during join planning (e.g. those containing subqueries); the
        caller applies them after the joins.
        """
        if not statement.from_items:
            return RelationData(bindings=[], rows=[{}]), _split_conjuncts(statement.where)
        conjuncts = _split_conjuncts(statement.where)
        # Compile each top-level item; INNER join trees are flattened so their
        # ON conditions join the global conjunct pool for hash-join planning.
        leaves: list[RelationData] = []
        pending_outer: list[tuple[str, RelationData, Expression | None]] = []
        for item in statement.from_items:
            flattened, extra_conjuncts, outer_joins = self._flatten_from_item(
                item, outer_scope
            )
            conjuncts.extend(extra_conjuncts)
            leaves.extend(flattened)
            pending_outer.extend(outer_joins)

        relation, residual = self._join_leaves(leaves, conjuncts, outer_scope)
        for join_type, right_relation, condition in pending_outer:
            relation = self._outer_join(relation, right_relation, condition, join_type, outer_scope)
        return relation, residual

    def _flatten_from_item(
        self, item: FromItem, outer_scope: Scope | None
    ) -> tuple[list[RelationData], list[Expression], list[tuple[str, RelationData, Expression | None]]]:
        """Flatten an item into leaf relations, join conjuncts, and outer joins."""
        if isinstance(item, TableRef):
            return [self._scan_table(item)], [], []
        if isinstance(item, SubqueryRef):
            return [self._scan_subquery(item, outer_scope)], [], []
        if isinstance(item, Join):
            if item.join_type in ("INNER", "CROSS"):
                left_leaves, left_conjuncts, left_outer = self._flatten_from_item(
                    item.left, outer_scope
                )
                right_leaves, right_conjuncts, right_outer = self._flatten_from_item(
                    item.right, outer_scope
                )
                conjuncts = left_conjuncts + right_conjuncts
                if item.condition is not None:
                    conjuncts.extend(_split_conjuncts(item.condition))
                return left_leaves + right_leaves, conjuncts, left_outer + right_outer
            # LEFT / RIGHT / FULL outer joins are applied after inner joins.
            left_leaves, left_conjuncts, left_outer = self._flatten_from_item(
                item.left, outer_scope
            )
            right_relation = self._compile_item_fully(item.right, outer_scope)
            outer = left_outer + [(item.join_type, right_relation, item.condition)]
            return left_leaves, left_conjuncts, outer
        raise ExecutionError(f"unsupported FROM item {type(item).__name__}")

    def _compile_item_fully(self, item: FromItem, outer_scope: Scope | None) -> RelationData:
        leaves, conjuncts, outer = self._flatten_from_item(item, outer_scope)
        relation, residual = self._join_leaves(leaves, conjuncts, outer_scope)
        for join_type, right_relation, condition in outer:
            relation = self._outer_join(relation, right_relation, condition, join_type, outer_scope)
        if residual:
            relation = self._filter_relation(relation, residual, outer_scope)
        return relation

    def _scan_table(self, ref: TableRef) -> RelationData:
        table = self._provider.table(ref.name)
        binding = ref.binding
        columns = table.schema.column_names
        rows = [{binding: row} for row in table.rows()]
        self.metrics.rows_scanned += len(rows)
        return RelationData(bindings=[(binding, list(columns))], rows=rows)

    def _scan_subquery(self, ref: SubqueryRef, outer_scope: Scope | None) -> RelationData:
        columns, tuples = self._select(ref.subquery, outer_scope)
        rows = [
            {ref.alias: dict(zip(columns, values))}
            for values in tuples
        ]
        return RelationData(bindings=[(ref.alias, list(columns))], rows=rows)

    # -- join planning -----------------------------------------------------------

    def _join_leaves(
        self,
        leaves: list[RelationData],
        conjuncts: list[Expression],
        outer_scope: Scope | None,
    ) -> tuple[RelationData, list[Expression]]:
        if not leaves:
            return RelationData(bindings=[], rows=[{}]), list(conjuncts)
        column_owner = self._column_ownership(leaves)

        # Push single-binding conjuncts down to their leaf.  Conjuncts whose
        # binding is not among these leaves (e.g. it belongs to the right side
        # of an outer join) stay in the residual list.
        leaf_bindings = {
            name.lower() for leaf in leaves for name in leaf.binding_names
        }
        remaining: list[Expression] = []
        per_leaf: dict[str, list[Expression]] = {}
        for conjunct in conjuncts:
            bindings = _conjunct_bindings(conjunct, column_owner)
            if (
                bindings is not None
                and len(bindings) == 1
                and next(iter(bindings)) in leaf_bindings
            ):
                per_leaf.setdefault(next(iter(bindings)), []).append(conjunct)
            else:
                remaining.append(conjunct)
        filtered_leaves = []
        for leaf in leaves:
            predicates = []
            for name in leaf.binding_names:
                predicates.extend(per_leaf.get(name.lower(), []))
            if predicates:
                leaf = self._filter_relation(leaf, predicates, outer_scope)
            filtered_leaves.append(leaf)

        # Greedy left-to-right join using hash joins on available equi-conjuncts.
        current = filtered_leaves[0]
        pending = list(filtered_leaves[1:])
        unjoined_conjuncts = remaining
        while pending:
            current_bindings = {name.lower() for name in current.binding_names}
            # Prefer a leaf connected to the current result by an equi-join.
            chosen_index = 0
            chosen_equi: list[tuple[Expression, ColumnRef, ColumnRef]] = []
            for index, leaf in enumerate(pending):
                equi = _find_equi_joins(
                    unjoined_conjuncts, current_bindings,
                    {name.lower() for name in leaf.binding_names}, column_owner,
                )
                if equi:
                    chosen_index, chosen_equi = index, equi
                    break
            leaf = pending.pop(chosen_index)
            current = self._hash_or_nested_join(current, leaf, chosen_equi, outer_scope)
            used = {id(conjunct) for conjunct, _, _ in chosen_equi}
            unjoined_conjuncts = [c for c in unjoined_conjuncts if id(c) not in used]
            # Apply any conjunct now fully covered by the joined bindings.
            current_bindings = {name.lower() for name in current.binding_names}
            applicable = []
            still_remaining = []
            for conjunct in unjoined_conjuncts:
                bindings = _conjunct_bindings(conjunct, column_owner)
                if bindings is not None and bindings <= current_bindings:
                    applicable.append(conjunct)
                else:
                    still_remaining.append(conjunct)
            if applicable:
                current = self._filter_relation(current, applicable, outer_scope)
            unjoined_conjuncts = still_remaining
        return current, unjoined_conjuncts

    def _hash_or_nested_join(
        self,
        left: RelationData,
        right: RelationData,
        equi: list[tuple[Expression, ColumnRef, ColumnRef]],
        outer_scope: Scope | None,
    ) -> RelationData:
        bindings = left.bindings + right.bindings
        if equi:
            left_keys = [pair[1] for pair in equi]
            right_keys = [pair[2] for pair in equi]
            table: dict[tuple, list[dict]] = {}
            for row in right.rows:
                scope = Scope(row, parent=outer_scope)
                key = tuple(scope.resolve(column) for column in right_keys)
                if any(value is None for value in key):
                    continue
                table.setdefault(key, []).append(row)
            joined: list[dict] = []
            for row in left.rows:
                scope = Scope(row, parent=outer_scope)
                key = tuple(scope.resolve(column) for column in left_keys)
                if any(value is None for value in key):
                    continue
                for match in table.get(key, ()):
                    combined = dict(row)
                    combined.update(match)
                    joined.append(combined)
            self.metrics.rows_joined += len(joined)
            return RelationData(bindings=bindings, rows=joined)
        joined = []
        for left_row in left.rows:
            for right_row in right.rows:
                combined = dict(left_row)
                combined.update(right_row)
                joined.append(combined)
        self.metrics.rows_joined += len(joined)
        return RelationData(bindings=bindings, rows=joined)

    def _outer_join(
        self,
        left: RelationData,
        right: RelationData,
        condition: Expression | None,
        join_type: str,
        outer_scope: Scope | None,
    ) -> RelationData:
        if join_type == "RIGHT":
            # A RIGHT join is a LEFT join with the operands swapped.
            return self._outer_join(right, left, condition, "LEFT", outer_scope)
        bindings = left.bindings + right.bindings
        null_right = {
            name: {column: None for column in columns} for name, columns in right.bindings
        }
        joined: list[dict] = []
        matched_right: set[int] = set()
        for left_row in left.rows:
            matched = False
            for index, right_row in enumerate(right.rows):
                combined = dict(left_row)
                combined.update(right_row)
                scope = Scope(combined, parent=outer_scope)
                if condition is None or is_true(
                    evaluate(condition, scope, self._run_subquery)
                ):
                    joined.append(combined)
                    matched = True
                    matched_right.add(index)
            if not matched:
                combined = dict(left_row)
                combined.update(null_right)
                joined.append(combined)
        if join_type == "FULL":
            null_left = {
                name: {column: None for column in columns} for name, columns in left.bindings
            }
            for index, right_row in enumerate(right.rows):
                if index not in matched_right:
                    combined = dict(null_left)
                    combined.update(right_row)
                    joined.append(combined)
        self.metrics.rows_joined += len(joined)
        return RelationData(bindings=bindings, rows=joined)

    def _filter_relation(
        self, relation: RelationData, predicates: list[Expression], outer_scope: Scope | None
    ) -> RelationData:
        rows = []
        for row in relation.rows:
            scope = Scope(row, parent=outer_scope)
            if all(
                is_true(evaluate(predicate, scope, self._run_subquery))
                for predicate in predicates
            ):
                rows.append(row)
        return RelationData(bindings=relation.bindings, rows=rows)

    def _column_ownership(self, leaves: list[RelationData]) -> dict[str, set[str]]:
        """Map lower-cased column name → set of binding names that provide it."""
        ownership: dict[str, set[str]] = {}
        for leaf in leaves:
            for binding, columns in leaf.bindings:
                for column in columns:
                    ownership.setdefault(column.lower(), set()).add(binding.lower())
        return ownership

    # -- projection ----------------------------------------------------------------

    def _project(
        self, statement: SelectStatement, relation: RelationData, outer_scope: Scope | None
    ) -> tuple[list[str], list[tuple]]:
        columns = self._output_columns(statement, relation)
        rows: list[tuple] = []
        for row in relation.rows:
            scope = Scope(row, parent=outer_scope)
            rows.append(tuple(self._evaluate_output(statement, relation, scope)))
        return columns, rows

    def _output_columns(
        self, statement: SelectStatement, relation: RelationData
    ) -> list[str]:
        columns: list[str] = []
        for item in statement.select_items:
            expr = item.expression
            if isinstance(expr, Star):
                columns.extend(self._star_columns(expr, relation))
            elif item.alias:
                columns.append(item.alias)
            elif isinstance(expr, ColumnRef):
                columns.append(expr.name)
            elif isinstance(expr, FunctionCall):
                columns.append(expr.name.lower())
            else:
                columns.append(f"column{len(columns) + 1}")
        return columns

    def _star_columns(self, star: Star, relation: RelationData) -> list[str]:
        names: list[str] = []
        for binding, columns in relation.bindings:
            if star.table is None or binding.lower() == star.table.lower():
                names.extend(columns)
        if not names and star.table is not None:
            raise ExecutionError(f"unknown table alias {star.table!r} in select list")
        return names

    def _evaluate_output(
        self, statement: SelectStatement, relation: RelationData, scope: Scope
    ) -> list[object]:
        values: list[object] = []
        for item in statement.select_items:
            expr = item.expression
            if isinstance(expr, Star):
                values.extend(self._star_values(expr, relation, scope))
            else:
                values.append(evaluate(expr, scope, self._run_subquery))
        return values

    def _star_values(
        self, star: Star, relation: RelationData, scope: Scope
    ) -> list[object]:
        values: list[object] = []
        for binding, columns in relation.bindings:
            if star.table is None or binding.lower() == star.table.lower():
                row = scope.bindings.get(binding.lower(), {})
                for column in columns:
                    values.append(row.get(column))
        return values

    # -- aggregation ----------------------------------------------------------------

    def _statement_has_aggregates(self, statement: SelectStatement) -> bool:
        expressions = [item.expression for item in statement.select_items]
        if statement.having is not None:
            expressions.append(statement.having)
        expressions.extend(item.expression for item in statement.order_by)
        return any(_has_aggregate(expr) for expr in expressions)

    def _aggregate(
        self, statement: SelectStatement, relation: RelationData, outer_scope: Scope | None
    ) -> tuple[list[str], list[tuple]]:
        groups: dict[tuple, list[dict]] = {}
        order: list[tuple] = []
        for row in relation.rows:
            scope = Scope(row, parent=outer_scope)
            key = tuple(
                _hashable(evaluate(expr, scope, self._run_subquery))
                for expr in statement.group_by
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        if not statement.group_by and not groups:
            groups[()] = []
            order.append(())

        columns = self._output_columns(statement, relation)
        result_rows: list[tuple] = []
        keyed_rows: list[tuple[tuple, dict | None, tuple]] = []
        for key in order:
            group_rows = groups[key]
            representative = group_rows[0] if group_rows else {}
            scope = Scope(representative, parent=outer_scope)
            if statement.having is not None:
                having_value = self._evaluate_aggregate_expr(
                    statement.having, group_rows, scope, outer_scope
                )
                if not is_true(having_value):
                    continue
            values: list[object] = []
            for item in statement.select_items:
                expr = item.expression
                if isinstance(expr, Star):
                    values.extend(self._star_values(expr, relation, scope))
                else:
                    values.append(
                        self._evaluate_aggregate_expr(expr, group_rows, scope, outer_scope)
                    )
            result_rows.append(tuple(values))
            keyed_rows.append((key, representative, tuple(values)))

        if statement.order_by:
            alias_map = {
                (item.alias or "").lower(): index
                for index, item in enumerate(statement.select_items)
                if item.alias
            }
            column_map = {name.lower(): index for index, name in enumerate(columns)}

            def order_key(entry):
                key, representative, values = entry
                scope = Scope(representative or {}, parent=outer_scope)
                keys = []
                for order_item in statement.order_by:
                    value = self._order_value(
                        order_item.expression,
                        groups.get(key, []),
                        scope,
                        outer_scope,
                        alias_map,
                        column_map,
                        values,
                    )
                    keys.append(
                        sort_key(value) if order_item.ascending else _Reversed(sort_key(value))
                    )
                return tuple(keys)

            keyed_rows.sort(key=order_key)
            result_rows = [values for _, _, values in keyed_rows]
        return columns, result_rows

    def _order_value(
        self, expr, group_rows, scope, outer_scope, alias_map, column_map, values
    ):
        if isinstance(expr, ColumnRef) and expr.table is None:
            lowered = expr.name.lower()
            if lowered in alias_map:
                return values[alias_map[lowered]]
            if lowered in column_map and not scope.has_column(expr):
                return values[column_map[lowered]]
        return self._evaluate_aggregate_expr(expr, group_rows, scope, outer_scope)

    def _evaluate_aggregate_expr(
        self, expr: Expression, group_rows: list[dict], scope: Scope, outer_scope: Scope | None
    ) -> object:
        if isinstance(expr, FunctionCall) and expr.is_aggregate:
            return self._compute_aggregate(expr, group_rows, outer_scope)
        if isinstance(expr, BinaryOp):
            left = self._evaluate_aggregate_expr(expr.left, group_rows, scope, outer_scope)
            right = self._evaluate_aggregate_expr(expr.right, group_rows, scope, outer_scope)
            return evaluate(
                BinaryOp(op=expr.op, left=Literal(left), right=Literal(right)),
                scope,
                self._run_subquery,
            )
        if isinstance(expr, UnaryOp):
            operand = self._evaluate_aggregate_expr(expr.operand, group_rows, scope, outer_scope)
            return evaluate(
                UnaryOp(op=expr.op, operand=Literal(operand)), scope, self._run_subquery
            )
        if _has_aggregate(expr):
            raise ExecutionError(
                "aggregates may only appear at the top level of an expression or "
                "inside simple arithmetic/boolean combinations"
            )
        return evaluate(expr, scope, self._run_subquery)

    def _compute_aggregate(
        self, call: FunctionCall, group_rows: list[dict], outer_scope: Scope | None
    ) -> object:
        name = call.name.upper()
        if name == "COUNT" and (not call.args or isinstance(call.args[0], Star)):
            return len(group_rows)
        if not call.args:
            raise ExecutionError(f"aggregate {name} requires an argument")
        argument = call.args[0]
        values = []
        for row in group_rows:
            scope = Scope(row, parent=outer_scope)
            value = evaluate(argument, scope, self._run_subquery)
            if value is not None:
                values.append(value)
        if call.distinct:
            unique = []
            seen = set()
            for value in values:
                key = _hashable(value)
                if key not in seen:
                    seen.add(key)
                    unique.append(value)
            values = unique
        if name == "COUNT":
            return len(values)
        if not values:
            return None
        if name == "SUM":
            return sum(values)
        if name == "AVG":
            return sum(values) / len(values)
        if name == "MIN":
            return min(values, key=sort_key)
        if name == "MAX":
            return max(values, key=sort_key)
        raise ExecutionError(f"unknown aggregate {name}")

    # -- ordering -------------------------------------------------------------------

    def _order_rows(
        self,
        statement: SelectStatement,
        relation: RelationData,
        rows: list[tuple],
        columns: list[str],
        outer_scope: Scope | None,
    ) -> list[tuple]:
        if not statement.order_by:
            return rows
        alias_map = {
            (item.alias or "").lower(): index
            for index, item in enumerate(statement.select_items)
            if item.alias
        }
        column_map = {name.lower(): index for index, name in enumerate(columns)}
        decorated = list(zip(relation.rows, rows))

        def order_key(entry):
            source_row, output_row = entry
            scope = Scope(source_row, parent=outer_scope)
            keys = []
            for order_item in statement.order_by:
                expr = order_item.expression
                value = None
                resolved = False
                if isinstance(expr, ColumnRef) and expr.table is None:
                    lowered = expr.name.lower()
                    if lowered in alias_map:
                        value = output_row[alias_map[lowered]]
                        resolved = True
                    elif not scope.has_column(expr) and lowered in column_map:
                        value = output_row[column_map[lowered]]
                        resolved = True
                if not resolved:
                    value = evaluate(expr, scope, self._run_subquery)
                keys.append(
                    sort_key(value) if order_item.ascending else _Reversed(sort_key(value))
                )
            return tuple(keys)

        decorated.sort(key=order_key)
        return [output_row for _, output_row in decorated]

    # -- subqueries -------------------------------------------------------------------

    def _run_subquery(self, subquery: SelectStatement, scope: Scope) -> list[tuple]:
        nested = Executor(self._provider)
        _, rows = nested._select(subquery, scope)
        self.metrics.rows_scanned += nested.metrics.rows_scanned
        return rows


class _Reversed:
    """Wrap a sort key to invert its ordering (for ORDER BY ... DESC)."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.key == self.key


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _split_conjuncts(expr: Expression | None) -> list[Expression]:
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _conjunct_bindings(
    expr: Expression, column_owner: dict[str, set[str]]
) -> set[str] | None:
    """The set of bindings a conjunct references, or None when undecidable.

    Undecidable cases (subqueries, unqualified columns owned by several
    bindings) force the conjunct to be evaluated only after the full join.
    """
    bindings: set[str] = set()
    for node in _walk_no_subquery(expr):
        if isinstance(node, (InSubquery, ExistsSubquery, ScalarSubquery)):
            return None
        if isinstance(node, ColumnRef):
            if node.table:
                bindings.add(node.table.lower())
            else:
                owners = column_owner.get(node.name.lower(), set())
                if len(owners) == 1:
                    bindings.add(next(iter(owners)))
                else:
                    return None
    return bindings


def _walk_no_subquery(expr: Expression):
    yield expr
    if isinstance(expr, BinaryOp):
        yield from _walk_no_subquery(expr.left)
        yield from _walk_no_subquery(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from _walk_no_subquery(expr.operand)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from _walk_no_subquery(arg)
    elif isinstance(expr, InList):
        yield from _walk_no_subquery(expr.expr)
        for value in expr.values:
            yield from _walk_no_subquery(value)
    elif isinstance(expr, Between):
        yield from _walk_no_subquery(expr.expr)
        yield from _walk_no_subquery(expr.low)
        yield from _walk_no_subquery(expr.high)
    elif isinstance(expr, CaseExpression):
        for condition, value in expr.whens:
            yield from _walk_no_subquery(condition)
            yield from _walk_no_subquery(value)
        if expr.default is not None:
            yield from _walk_no_subquery(expr.default)
    elif isinstance(expr, (InSubquery, ExistsSubquery, ScalarSubquery)):
        if isinstance(expr, InSubquery):
            yield from _walk_no_subquery(expr.expr)


def _find_equi_joins(
    conjuncts: list[Expression],
    left_bindings: set[str],
    right_bindings: set[str],
    column_owner: dict[str, set[str]],
) -> list[tuple[Expression, ColumnRef, ColumnRef]]:
    """Equality conjuncts connecting the two binding sets, as (expr, left, right)."""
    matches = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, BinaryOp) or conjunct.op != "=":
            continue
        if not isinstance(conjunct.left, ColumnRef) or not isinstance(
            conjunct.right, ColumnRef
        ):
            continue
        first = _resolve_binding(conjunct.left, column_owner)
        second = _resolve_binding(conjunct.right, column_owner)
        if first is None or second is None:
            continue
        if first in left_bindings and second in right_bindings:
            matches.append((conjunct, conjunct.left, conjunct.right))
        elif second in left_bindings and first in right_bindings:
            matches.append((conjunct, conjunct.right, conjunct.left))
    return matches


def _resolve_binding(column: ColumnRef, column_owner: dict[str, set[str]]) -> str | None:
    if column.table:
        return column.table.lower()
    owners = column_owner.get(column.name.lower(), set())
    if len(owners) == 1:
        return next(iter(owners))
    return None


def _has_aggregate(expr: Expression) -> bool:
    if isinstance(expr, FunctionCall) and expr.is_aggregate:
        return True
    if isinstance(expr, BinaryOp):
        return _has_aggregate(expr.left) or _has_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return _has_aggregate(expr.operand)
    if isinstance(expr, FunctionCall):
        return any(_has_aggregate(arg) for arg in expr.args)
    if isinstance(expr, CaseExpression):
        return any(
            _has_aggregate(condition) or _has_aggregate(value)
            for condition, value in expr.whens
        ) or (expr.default is not None and _has_aggregate(expr.default))
    return False


def _hashable(value: object) -> object:
    if isinstance(value, list):
        return tuple(value)
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    return value


def _distinct(rows: list[tuple]) -> list[tuple]:
    seen = set()
    unique = []
    for row in rows:
        key = tuple(_hashable(value) for value in row)
        if key not in seen:
            seen.add(key)
            unique.append(row)
    return unique


def _apply_limit(rows: list[tuple], limit: int | None, offset: int | None) -> list[tuple]:
    start = offset or 0
    if limit is None:
        return rows[start:] if start else rows
    return rows[start : start + limit]
