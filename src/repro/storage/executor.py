"""SQL executor.

Executes parsed statements against the tables owned by a
:class:`~repro.storage.database.Database`.  Since the planner/executor split,
the SELECT pipeline has three real layers:

* **parse** — :mod:`repro.sql.parser` produces the AST,
* **plan** — :class:`~repro.storage.planner.Planner` performs predicate
  pushdown, chooses per-table access paths (``IndexScan`` vs ``SeqScan``),
  orders joins by estimated cardinality, and picks physical joins (hash join
  with cost-chosen build side, index nested-loop join),
* **execute** — this module streams rows through the Volcano-style operator
  tree (:mod:`repro.storage.operators`) and applies projection, grouping and
  aggregation (COUNT/SUM/AVG/MIN/MAX, DISTINCT), HAVING, ORDER BY (including
  select-list aliases), DISTINCT, LIMIT/OFFSET, and correlated and
  uncorrelated subqueries (IN / EXISTS / scalar).

When a query has no ORDER BY — or the planner eliminated the sort because a
sorted index already delivers the requested order — output rows stream
straight out of the operator pipeline and LIMIT short-circuits the scan.

Since the batched-execution refactor the executor consumes the operator tree
batch-at-a-time (``root.batches(ctx)``): projection runs over whole batches,
simple select lists (columns and ``*``) compile into per-row getter tuples
that bypass the expression evaluator, and on streaming plans with a LIMIT the
context's batch size tracks the remaining row budget, so a short-circuited
scan touches exactly as many heap rows as the row-at-a-time engine did when
the scan feeds the limit directly (and at most one shrunken batch more when
a filter sits in between).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionError
from repro.obs.metrics import engine_timer
from repro.storage.exec_settings import DEFAULT_SETTINGS
from repro.storage.expression import Scope, evaluate, is_true
from repro.storage.kernels import gather_columns
from repro.storage.operators import (
    ExecutionContext,
    Filter,
    IndexScan,
    NodeStats,
    ParallelSeqScan,
    RangeScan,
    SeqScan,
    resolve_binding_column,
)
from repro.storage.planner import (
    Planner,
    SelectPlan,
    has_aggregate as _has_aggregate,
    statement_has_aggregates,
)
from repro.storage.types import sort_key
from repro.sql.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    SelectStatement,
    Star,
    UnaryOp,
)

#: FROM-ordered bindings of a relation: (binding name, ordered column names).
Bindings = list[tuple[str, list[str]]]


@dataclass
class ExecutorMetrics:
    """Counters describing the work done by one statement execution.

    ``rows_scanned`` counts rows actually fetched by the chosen access paths
    (an index lookup charges only the matching rows, a sequential scan charges
    every row), so profiler numbers stay honest across plan changes.
    """

    rows_scanned: int = 0
    rows_joined: int = 0
    rows_output: int = 0
    index_lookups: int = 0
    #: Batches the executor consumed from the plan root (batched pipeline).
    batches: int = 0
    #: Columnar batches built by scans (subset of the pipeline's batches).
    columnar_batches: int = 0
    #: Groups formed by the aggregation stage (before HAVING filtering).
    groups_emitted: int = 0
    #: Wall time spent inside the aggregation stage (input scan included).
    agg_seconds: float = 0.0
    #: Wall time spent inside columnar kernels (filter selection + gathers).
    kernel_seconds: float = 0.0


class Executor:
    """Executes statements against a table provider.

    ``table_provider`` must expose ``table(name) -> Table`` and
    ``catalog`` (used only for error messages here; DDL is handled by the
    Database facade, not the executor).
    """

    def __init__(self, table_provider, deadline: float | None = None):
        self._provider = table_provider
        self._settings = getattr(table_provider, "exec_settings", None) or DEFAULT_SETTINGS
        #: The one duration source for ExecutorMetrics seconds, operator
        #: instrumentation, and timeout deadlines: the provider's telemetry
        #: timer when one is attached, else the sanctioned engine timer.
        self._timer = getattr(table_provider, "statement_timer", None) or engine_timer
        #: Absolute ``_timer`` deadline of the statement's timeout budget.
        self._deadline = deadline
        self.metrics = ExecutorMetrics()

    # -- public entry points --------------------------------------------------

    def execute_select(
        self, statement: SelectStatement, outer_scope: Scope | None = None
    ) -> tuple[list[str], list[tuple]]:
        """Run a SELECT and return ``(column_names, rows)``."""
        self.metrics = ExecutorMetrics()
        return self._select(statement, outer_scope)

    def execute_plan(
        self,
        plan: SelectPlan,
        outer_scope: Scope | None = None,
        node_stats: dict[int, NodeStats] | None = None,
    ) -> tuple[list[str], list[tuple]]:
        """Run an already-planned SELECT (used by the Database's plan cache).

        ``node_stats`` — a dict the caller owns — switches on EXPLAIN ANALYZE
        instrumentation: every operator records its actual rows/batches/time
        under ``id(operator)``, and the executor stores the statement's output
        cardinality under the ``"output_rows"`` key.
        """
        self.metrics = ExecutorMetrics()
        return self._execute_plan(plan, outer_scope, node_stats)

    def _verify_plan(self, plan: SelectPlan, outer_scope: Scope | None) -> None:
        """Run the plan-invariant verifier (``ExecutionSettings.verify_plans``).

        Imported lazily: the analysis layer sits above the storage layer and
        only loads when the guardrail is switched on.  Plans executed with an
        outer scope are (possibly correlated) subqueries, so locally
        unresolvable columns are legal there.
        """
        from repro.analysis.framework import Severity
        from repro.analysis.plan_verify import PlanVerifier

        diagnostics = PlanVerifier().verify_select(
            plan, allow_outer=outer_scope is not None
        )
        errors = [d for d in diagnostics if d.severity is Severity.ERROR]
        if errors:
            details = "; ".join(d.format() for d in errors)
            raise ExecutionError(f"plan failed verification: {details}")

    # -- SELECT pipeline --------------------------------------------------------

    def _select(
        self, statement: SelectStatement, outer_scope: Scope | None
    ) -> tuple[list[str], list[tuple]]:
        plan = Planner(self._provider).plan_select(statement)
        return self._execute_plan(plan, outer_scope)

    def _execute_plan(
        self,
        plan: SelectPlan,
        outer_scope: Scope | None,
        node_stats: dict[int, NodeStats] | None = None,
    ) -> tuple[list[str], list[tuple]]:
        if self._settings.verify_plans:
            self._verify_plan(plan, outer_scope)
        statement = plan.statement
        ctx = ExecutionContext(
            metrics=self.metrics,
            outer_scope=outer_scope,
            run_subquery=self._run_subquery,
            run_select=lambda subplan: self._execute_plan(
                subplan, outer_scope, node_stats
            ),
            batch_size=self._settings.batch_size,
            node_stats=node_stats,
            compile_expressions=self._settings.compile_expressions,
            columnar_kernels=self._settings.columnar_kernels,
            deadline=self._deadline,
            timer=self._timer,
        )
        project = None
        if self._settings.compile_expressions:
            # Memoized on the plan: cached template plans execute thousands of
            # times, and the compiled getters read only row-dict keys, so
            # parameter re-binding never stales them.
            project = getattr(plan, "_compiled_projection", _UNSET)
            if project is _UNSET:
                project = _compile_projection(statement, plan.bindings)
                plan._compiled_projection = project
        if statement.group_by or statement_has_aggregates(statement):
            if plan.aggregate is not None and self._settings.vectorized_aggregation:
                columns, rows = self._aggregate_streamed(
                    statement, plan, ctx, outer_scope
                )
            else:
                started = self._timer()
                source = self._flatten(plan.root.batches(ctx))
                columns, rows = self._aggregate(statement, plan, source, outer_scope)
                self.metrics.agg_seconds += self._timer() - started
            if statement.distinct:
                rows = _distinct(rows)
            rows = _apply_limit(rows, statement.limit, statement.offset)
        elif statement.order_by and not plan.sort_eliminated and plan.sort_prefix:
            # Partial sort: the scan already streams rows ordered by the
            # first ORDER BY key (sorted index), so only runs of equal
            # leading-key values are buffered and sorted by the remaining
            # keys — and LIMIT short-circuits at the first run boundary past
            # the budget instead of materializing the whole table.
            columns = plan.output_columns
            rows = self._partial_order_rows(
                statement, plan, ctx, project, outer_scope
            )
            if statement.distinct:
                rows = _distinct(rows)
            rows = _apply_limit(rows, statement.limit, statement.offset)
        elif statement.order_by and not plan.sort_eliminated:
            columns = plan.output_columns
            pairs = []
            for batch in plan.root.batches(ctx):
                self.metrics.batches += 1
                for row in batch:
                    if project is not None:
                        values = project(row)
                    else:
                        scope = Scope(row, parent=outer_scope)
                        values = tuple(
                            self._evaluate_output(statement, plan.bindings, scope)
                        )
                    pairs.append((row, values))
            rows = self._order_rows(statement, pairs, columns, outer_scope)
            if statement.distinct:
                rows = _distinct(rows)
            rows = _apply_limit(rows, statement.limit, statement.offset)
        else:
            # Pure streaming path (including index-ordered ORDER BY, where the
            # scan already yields sorted rows): project batch by batch, stop
            # once LIMIT is met.  On single-table scan/filter pipelines the
            # batch size tracks the *remaining* LIMIT budget (scans re-read it
            # after every flush), so a short-circuited scan touches exactly as
            # many heap rows as the row-at-a-time engine when it feeds the
            # limit directly, and at most one shrunken batch more behind a
            # filter.  Join pipelines keep the configured batch size — their
            # build sides consume whole inputs regardless, and throttling them
            # to the LIMIT would re-introduce per-row batch overhead.
            columns = plan.output_columns
            needed = (
                statement.limit + (statement.offset or 0)
                if statement.limit is not None
                else None
            )
            budget = needed if _limit_budget_applies(plan.root) else None
            base_batch = ctx.batch_size
            if budget is not None:
                ctx.batch_size = max(min(budget, base_batch), 1)
            seen: set | None = set() if statement.distinct else None
            rows = []
            done = False
            columnar = None
            if project is not None and plan.root.supports_columnar(ctx):
                # Memoized like the row projection: the keys are row-dict
                # lookups only, so parameter re-binding never stales them.
                columnar = getattr(plan, "_columnar_projection", _UNSET)
                if columnar is _UNSET:
                    columnar = _compile_columnar_projection(statement, plan.bindings)
                    plan._columnar_projection = columnar
            if columnar is not None:
                # Columnar streaming: the scan builds ColumnBatches of bare
                # heap rows, filter kernels narrow them to selection vectors,
                # and projection is one per-batch column gather — no per-row
                # binding dicts anywhere on the path.
                for batch in plan.root.col_batches(ctx):
                    self.metrics.batches += 1
                    started = self._timer()
                    values_batch = gather_columns(batch, columnar)
                    self.metrics.kernel_seconds += self._timer() - started
                    if seen is None and needed is None:
                        # No DISTINCT and no LIMIT: the whole gathered batch
                        # survives, so skip the per-row loop entirely.
                        rows.extend(values_batch)
                        continue
                    for values in values_batch:
                        if seen is not None:
                            key = tuple(_hashable(value) for value in values)
                            if key in seen:
                                continue
                            seen.add(key)
                        rows.append(values)
                        if needed is not None and len(rows) >= needed:
                            done = True
                            break
                    if done:
                        break
                    if budget is not None:
                        ctx.batch_size = max(min(budget - len(rows), base_batch), 1)
            else:
                for batch in plan.root.batches(ctx):
                    self.metrics.batches += 1
                    for row in batch:
                        if project is not None:
                            values = project(row)
                        else:
                            scope = Scope(row, parent=outer_scope)
                            values = tuple(
                                self._evaluate_output(statement, plan.bindings, scope)
                            )
                        if seen is not None:
                            key = tuple(_hashable(value) for value in values)
                            if key in seen:
                                continue
                            seen.add(key)
                        rows.append(values)
                        if needed is not None and len(rows) >= needed:
                            done = True
                            break
                    if done:
                        break
                    if budget is not None:
                        ctx.batch_size = max(min(budget - len(rows), base_batch), 1)
            rows = _apply_limit(rows, statement.limit, statement.offset)
        self.metrics.rows_output = len(rows)
        if node_stats is not None:
            node_stats["output_rows"] = len(rows)
        return columns, rows

    def _flatten(self, batches):
        """Flatten a batch stream to rows, counting consumed batches."""
        for batch in batches:
            self.metrics.batches += 1
            yield from batch

    # -- projection ----------------------------------------------------------------

    def _evaluate_output(
        self, statement: SelectStatement, bindings: Bindings, scope: Scope
    ) -> list[object]:
        values: list[object] = []
        for item in statement.select_items:
            expr = item.expression
            if isinstance(expr, Star):
                values.extend(self._star_values(expr, bindings, scope))
            else:
                values.append(evaluate(expr, scope, self._run_subquery))
        return values

    def _star_values(
        self, star: Star, bindings: Bindings, scope: Scope
    ) -> list[object]:
        values: list[object] = []
        for binding, columns in bindings:
            if star.table is None or binding.lower() == star.table.lower():
                row = scope.bindings.get(binding.lower(), {})
                for column in columns:
                    values.append(row.get(column))
        return values

    # -- aggregation ----------------------------------------------------------------

    def _aggregate_streamed(
        self,
        statement: SelectStatement,
        plan: SelectPlan,
        ctx: ExecutionContext,
        outer_scope: Scope | None,
    ) -> tuple[list[str], list[tuple]]:
        """Finish the plan's vectorized aggregate stage into output rows.

        The operator (:class:`~repro.storage.operators.HashAggregate` /
        :class:`~repro.storage.operators.SortedGroupAggregate`) streams
        ``(representative row, finished aggregate values)`` pairs; HAVING,
        projection, and ORDER BY read the finished slot values instead of
        re-walking buffered group rows like the historical path below does.
        """
        aggregate = plan.aggregate
        slots = aggregate.collection.slots
        columns = plan.output_columns
        ordering = bool(statement.order_by)
        result_rows: list[tuple] = []
        keyed_rows: list[tuple[dict, list, tuple]] = []
        for representative, finished in aggregate.groups(ctx):
            scope = Scope(representative, parent=outer_scope)
            if statement.having is not None:
                having_value = self._finish_expr(
                    statement.having, finished, slots, scope
                )
                if not is_true(having_value):
                    continue
            values: list[object] = []
            for item in statement.select_items:
                expr = item.expression
                if isinstance(expr, Star):
                    values.extend(self._star_values(expr, plan.bindings, scope))
                else:
                    values.append(self._finish_expr(expr, finished, slots, scope))
            row = tuple(values)
            result_rows.append(row)
            if ordering:
                keyed_rows.append((representative, finished, row))

        if ordering:
            alias_map = {
                (item.alias or "").lower(): index
                for index, item in enumerate(statement.select_items)
                if item.alias
            }
            column_map = {name.lower(): index for index, name in enumerate(columns)}

            def order_key(entry):
                representative, finished, values = entry
                scope = Scope(representative or {}, parent=outer_scope)
                keys = []
                for order_item in statement.order_by:
                    expr = order_item.expression
                    value = None
                    resolved = False
                    if isinstance(expr, ColumnRef) and expr.table is None:
                        lowered = expr.name.lower()
                        if lowered in alias_map:
                            value = values[alias_map[lowered]]
                            resolved = True
                        elif lowered in column_map and not scope.has_column(expr):
                            value = values[column_map[lowered]]
                            resolved = True
                    if not resolved:
                        value = self._finish_expr(expr, finished, slots, scope)
                    keys.append(
                        sort_key(value)
                        if order_item.ascending
                        else _Reversed(sort_key(value))
                    )
                return tuple(keys)

            keyed_rows.sort(key=order_key)
            result_rows = [values for _, _, values in keyed_rows]
        return columns, result_rows

    def _finish_expr(
        self, expr: Expression, finished: list, slots: dict[int, int], scope: Scope
    ) -> object:
        """Evaluate a SELECT/HAVING/ORDER BY expression over finished
        aggregate states — the streamed twin of ``_evaluate_aggregate_expr``."""
        if isinstance(expr, FunctionCall) and expr.is_aggregate:
            return finished[slots[id(expr)]]
        if isinstance(expr, BinaryOp):
            left = self._finish_expr(expr.left, finished, slots, scope)
            right = self._finish_expr(expr.right, finished, slots, scope)
            return evaluate(
                BinaryOp(op=expr.op, left=Literal(left), right=Literal(right)),
                scope,
                self._run_subquery,
            )
        if isinstance(expr, UnaryOp):
            operand = self._finish_expr(expr.operand, finished, slots, scope)
            return evaluate(
                UnaryOp(op=expr.op, operand=Literal(operand)), scope, self._run_subquery
            )
        if _has_aggregate(expr):
            # Unreachable behind collect_aggregate_specs, kept for parity with
            # the historical path's placement error.
            raise ExecutionError(
                "aggregates may only appear at the top level of an expression or "
                "inside simple arithmetic/boolean combinations"
            )
        return evaluate(expr, scope, self._run_subquery)

    def _aggregate(
        self,
        statement: SelectStatement,
        plan: SelectPlan,
        source,
        outer_scope: Scope | None,
    ) -> tuple[list[str], list[tuple]]:
        groups: dict[tuple, list[dict]] = {}
        order: list[tuple] = []
        for row in source:
            scope = Scope(row, parent=outer_scope)
            key = tuple(
                _hashable(evaluate(expr, scope, self._run_subquery))
                for expr in statement.group_by
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        if not statement.group_by and not groups:
            groups[()] = []
            order.append(())
        self.metrics.groups_emitted += len(order)

        columns = plan.output_columns
        result_rows: list[tuple] = []
        keyed_rows: list[tuple[tuple, dict | None, tuple]] = []
        for key in order:
            group_rows = groups[key]
            representative = group_rows[0] if group_rows else {}
            scope = Scope(representative, parent=outer_scope)
            if statement.having is not None:
                having_value = self._evaluate_aggregate_expr(
                    statement.having, group_rows, scope, outer_scope
                )
                if not is_true(having_value):
                    continue
            values: list[object] = []
            for item in statement.select_items:
                expr = item.expression
                if isinstance(expr, Star):
                    values.extend(self._star_values(expr, plan.bindings, scope))
                else:
                    values.append(
                        self._evaluate_aggregate_expr(expr, group_rows, scope, outer_scope)
                    )
            result_rows.append(tuple(values))
            keyed_rows.append((key, representative, tuple(values)))

        if statement.order_by:
            alias_map = {
                (item.alias or "").lower(): index
                for index, item in enumerate(statement.select_items)
                if item.alias
            }
            column_map = {name.lower(): index for index, name in enumerate(columns)}

            def order_key(entry):
                key, representative, values = entry
                scope = Scope(representative or {}, parent=outer_scope)
                keys = []
                for order_item in statement.order_by:
                    value = self._order_value(
                        order_item.expression,
                        groups.get(key, []),
                        scope,
                        outer_scope,
                        alias_map,
                        column_map,
                        values,
                    )
                    keys.append(
                        sort_key(value) if order_item.ascending else _Reversed(sort_key(value))
                    )
                return tuple(keys)

            keyed_rows.sort(key=order_key)
            result_rows = [values for _, _, values in keyed_rows]
        return columns, result_rows

    def _order_value(
        self, expr, group_rows, scope, outer_scope, alias_map, column_map, values
    ):
        if isinstance(expr, ColumnRef) and expr.table is None:
            lowered = expr.name.lower()
            if lowered in alias_map:
                return values[alias_map[lowered]]
            if lowered in column_map and not scope.has_column(expr):
                return values[column_map[lowered]]
        return self._evaluate_aggregate_expr(expr, group_rows, scope, outer_scope)

    def _evaluate_aggregate_expr(
        self, expr: Expression, group_rows: list[dict], scope: Scope, outer_scope: Scope | None
    ) -> object:
        if isinstance(expr, FunctionCall) and expr.is_aggregate:
            return self._compute_aggregate(expr, group_rows, outer_scope)
        if isinstance(expr, BinaryOp):
            left = self._evaluate_aggregate_expr(expr.left, group_rows, scope, outer_scope)
            right = self._evaluate_aggregate_expr(expr.right, group_rows, scope, outer_scope)
            return evaluate(
                BinaryOp(op=expr.op, left=Literal(left), right=Literal(right)),
                scope,
                self._run_subquery,
            )
        if isinstance(expr, UnaryOp):
            operand = self._evaluate_aggregate_expr(expr.operand, group_rows, scope, outer_scope)
            return evaluate(
                UnaryOp(op=expr.op, operand=Literal(operand)), scope, self._run_subquery
            )
        if _has_aggregate(expr):
            raise ExecutionError(
                "aggregates may only appear at the top level of an expression or "
                "inside simple arithmetic/boolean combinations"
            )
        return evaluate(expr, scope, self._run_subquery)

    def _compute_aggregate(
        self, call: FunctionCall, group_rows: list[dict], outer_scope: Scope | None
    ) -> object:
        name = call.name.upper()
        if name == "COUNT" and (not call.args or isinstance(call.args[0], Star)):
            return len(group_rows)
        if not call.args:
            raise ExecutionError(f"aggregate {name} requires an argument")
        argument = call.args[0]
        values = []
        for row in group_rows:
            scope = Scope(row, parent=outer_scope)
            value = evaluate(argument, scope, self._run_subquery)
            if value is not None:
                values.append(value)
        if call.distinct:
            unique = []
            seen = set()
            for value in values:
                key = _hashable(value)
                if key not in seen:
                    seen.add(key)
                    unique.append(value)
            values = unique
        if name == "COUNT":
            return len(values)
        if not values:
            return None
        if name == "SUM":
            return sum(values)
        if name == "AVG":
            return sum(values) / len(values)
        if name == "MIN":
            return min(values, key=sort_key)
        if name == "MAX":
            return max(values, key=sort_key)
        raise ExecutionError(f"unknown aggregate {name}")

    # -- ordering -------------------------------------------------------------------

    def _make_order_key(
        self,
        statement: SelectStatement,
        columns: list[str],
        outer_scope: Scope | None,
        items,
    ):
        """A ``(source_row, output_row) -> sort key tuple`` closure for the
        given ORDER BY items, resolving select-list aliases before source
        columns exactly like a full sort does."""
        alias_map = {
            (item.alias or "").lower(): index
            for index, item in enumerate(statement.select_items)
            if item.alias
        }
        column_map = {name.lower(): index for index, name in enumerate(columns)}

        def order_key(entry):
            source_row, output_row = entry
            scope = Scope(source_row, parent=outer_scope)
            keys = []
            for order_item in items:
                expr = order_item.expression
                value = None
                resolved = False
                if isinstance(expr, ColumnRef) and expr.table is None:
                    lowered = expr.name.lower()
                    if lowered in alias_map:
                        value = output_row[alias_map[lowered]]
                        resolved = True
                    elif not scope.has_column(expr) and lowered in column_map:
                        value = output_row[column_map[lowered]]
                        resolved = True
                if not resolved:
                    value = evaluate(expr, scope, self._run_subquery)
                keys.append(
                    sort_key(value) if order_item.ascending else _Reversed(sort_key(value))
                )
            return tuple(keys)

        return order_key

    def _order_rows(
        self,
        statement: SelectStatement,
        pairs: list[tuple[dict, tuple]],
        columns: list[str],
        outer_scope: Scope | None,
    ) -> list[tuple]:
        order_key = self._make_order_key(
            statement, columns, outer_scope, statement.order_by
        )
        pairs.sort(key=order_key)
        return [output_row for _, output_row in pairs]

    def _partial_order_rows(
        self,
        statement: SelectStatement,
        plan: SelectPlan,
        ctx: ExecutionContext,
        project,
        outer_scope: Scope | None,
    ) -> list[tuple]:
        """Order rows whose leading ORDER BY keys already stream in order.

        The scan (an index-ordered ``RangeScan``) delivers rows sorted by the
        first ``plan.sort_prefix`` ORDER BY keys; only consecutive runs with
        equal leading keys are buffered and sorted by the remaining keys.
        Memory is bounded by the largest run, and with a LIMIT (and no
        DISTINCT) consumption stops at the first run boundary past the
        budget, so a top-k query never walks the whole table.
        """
        columns = plan.output_columns
        items = statement.order_by
        prefix_key = self._make_order_key(
            statement, columns, outer_scope, items[: plan.sort_prefix]
        )
        rest_key = self._make_order_key(
            statement, columns, outer_scope, items[plan.sort_prefix :]
        )
        needed = None
        if statement.limit is not None and not statement.distinct:
            needed = statement.limit + (statement.offset or 0)
        rows: list[tuple] = []
        run: list[tuple[dict, tuple]] = []
        run_key = None
        done = False
        for batch in plan.root.batches(ctx):
            self.metrics.batches += 1
            for row in batch:
                if project is not None:
                    values = project(row)
                else:
                    scope = Scope(row, parent=outer_scope)
                    values = tuple(
                        self._evaluate_output(statement, plan.bindings, scope)
                    )
                entry = (row, values)
                key = prefix_key(entry)
                if run and key != run_key:
                    run.sort(key=rest_key)
                    rows.extend(output for _, output in run)
                    run = []
                    if needed is not None and len(rows) >= needed:
                        done = True
                        break
                run_key = key
                run.append(entry)
            if done:
                break
        if not done and run:
            run.sort(key=rest_key)
            rows.extend(output for _, output in run)
        return rows

    # -- subqueries -------------------------------------------------------------------

    def _run_subquery(self, subquery: SelectStatement, scope: Scope) -> list[tuple]:
        # Subqueries inherit the statement's timeout budget: a runaway
        # correlated subquery cancels at its own batch boundaries.
        nested = Executor(self._provider, deadline=self._deadline)
        _, rows = nested._select(subquery, scope)
        self.metrics.rows_scanned += nested.metrics.rows_scanned
        self.metrics.rows_joined += nested.metrics.rows_joined
        self.metrics.index_lookups += nested.metrics.index_lookups
        return rows


class _Reversed:
    """Wrap a sort key to invert its ordering (for ORDER BY ... DESC)."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.key == self.key


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


#: Sentinel distinguishing "not compiled yet" from "not compilable" (None).
_UNSET = object()


def _limit_budget_applies(op) -> bool:
    """True when shrinking the batch size to the LIMIT budget is a pure win.

    That is the single-table streaming shape — filters over one sequential or
    index-ordered scan — where every batch the scan builds feeds the limit
    directly (filters only drop rows).  Joins, subquery scans, and parallel
    scans are excluded: they consume entire inputs (build sides, barriers)
    regardless of the limit, so tiny batches would only re-introduce the
    per-row overhead batching removes.
    """
    while isinstance(op, Filter):
        op = op.child
    return isinstance(op, (SeqScan, RangeScan, IndexScan)) and not isinstance(
        op, ParallelSeqScan
    )


def _compile_projection(statement: SelectStatement, bindings: Bindings):
    """Compile a simple select list into a ``row -> value tuple`` closure.

    Only column references and ``*`` expansions qualify — they resolve at
    compile time to direct ``row[binding][column]`` reads, skipping per-row
    Scope construction and evaluator dispatch.  Any computed item (arithmetic,
    functions, subqueries, aggregates) returns None and the caller keeps the
    evaluator path.  Star expansion mirrors ``_star_values``: a column missing
    from a binding's row projects NULL rather than erroring.
    """
    getters = []
    for item in statement.select_items:
        expr = item.expression
        if isinstance(expr, Star):
            for binding, columns in bindings:
                if expr.table is None or binding.lower() == expr.table.lower():
                    for column in columns:
                        getters.append(
                            lambda row, _b=binding, _c=column: row.get(_b, _EMPTY_ROW).get(_c)
                        )
        elif isinstance(expr, ColumnRef):
            resolved = resolve_binding_column(bindings, expr)
            if resolved is None:
                return None
            binding, column = resolved
            getters.append(lambda row, _b=binding, _c=column: row[_b][_c])
        else:
            return None
    return lambda row: tuple(getter(row) for getter in getters)


def _compile_columnar_projection(
    statement: SelectStatement, bindings: Bindings
) -> list[str] | None:
    """Row-dict keys projecting a simple select list straight off a ColumnBatch.

    The columnar twin of :func:`_compile_projection`: only column references
    and ``*`` over the pipeline's single binding qualify — each select item
    becomes a stored-row key that ``gather_columns`` reads column-at-a-time.
    Anything else (computed items, a ``*`` qualified with a different table)
    returns None and the caller keeps the row path.
    """
    if len(bindings) != 1:
        return None
    binding, columns = bindings[0]
    keys: list[str] = []
    for item in statement.select_items:
        expr = item.expression
        if isinstance(expr, Star):
            if expr.table is not None and expr.table.lower() != binding.lower():
                return None
            keys.extend(columns)
        elif isinstance(expr, ColumnRef):
            resolved = resolve_binding_column(bindings, expr)
            if resolved is None:
                return None
            keys.append(resolved[1])
        else:
            return None
    return keys


_EMPTY_ROW: dict[str, object] = {}


def _hashable(value: object) -> object:
    if isinstance(value, list):
        return tuple(value)
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    return value


def _distinct(rows: list[tuple]) -> list[tuple]:
    seen = set()
    unique = []
    for row in rows:
        key = tuple(_hashable(value) for value in row)
        if key not in seen:
            seen.add(key)
            unique.append(row)
    return unique


def _apply_limit(rows: list[tuple], limit: int | None, offset: int | None) -> list[tuple]:
    start = offset or 0
    if limit is None:
        return rows[start:] if start else rows
    return rows[start : start + limit]
