"""A paged B+ tree: the ordered index structure behind ``SortedIndex``.

Nodes are plain dicts paged through a
:class:`~repro.storage.buffer_pool.PageStore`, so a large index obeys the
same ``buffer_pool_pages`` residency budget as the heaps it indexes:

* leaf — ``{"leaf": True, "keys": [...], "vals": [[row_id, ...], ...],
  "next": page_id|None, "prev": page_id|None}``; ``vals[i]`` is the sorted
  row-id bucket of ``keys[i]`` (one key per distinct value, so non-unique
  columns don't widen the tree).  Leaves form a doubly linked list, which
  is what makes ordered scans and ``descending`` ranges sequential.
* internal — ``{"leaf": False, "keys": [...], "kids": [page_id, ...]}``;
  ``keys[i]`` separates ``kids[i]`` from ``kids[i+1]`` with the convention
  *separator = smallest key ever in the right subtree*: descent takes
  ``kids[bisect_right(keys, key)]``, so keys equal to a separator live in
  the right child.

Keys are :func:`~repro.storage.types.sort_key` tuples — the engine's total
order — so an in-order walk of the leaves is exactly the order ORDER BY
produces.  All structural mutation follows the buffer pool's pin protocol
(``fetch`` → mutate → ``mark_dirty`` → ``unpin``); traversals use the
pinless ``read`` path and copy a leaf's content before yielding from it.
"""

from __future__ import annotations

import json
from bisect import bisect_left, bisect_right, insort

from repro.storage.buffer_pool import PageStore

#: Maximum keys per node; a node splits when it would exceed this.  32 keys
#: of a few dozen bytes keeps a serialized node near one 4 KiB pager frame.
DEFAULT_ORDER = 32


class _NodeCodec:
    """(De)serialize tree nodes; JSON turns key tuples into lists, so the
    decoder restores them (sort keys are always 2-tuples)."""

    @staticmethod
    def encode(node: dict) -> bytes:
        return json.dumps(node, separators=(",", ":")).encode("utf-8")

    @staticmethod
    def decode(payload: bytes) -> dict:
        node = json.loads(payload.decode("utf-8"))
        node["keys"] = [tuple(key) for key in node["keys"]]
        return node


NODE_CODEC = _NodeCodec()


class BPlusTree:
    """An order-``order`` B+ tree mapping sort keys to row-id buckets."""

    def __init__(self, store: PageStore | None = None, order: int = DEFAULT_ORDER):
        if order < 4:
            raise ValueError(f"B+ tree order must be at least 4, got {order}")
        self._store = store if store is not None else PageStore()
        self._order = order
        self._min_keys = order // 2
        self._root = self._store.allocate(
            {"leaf": True, "keys": [], "vals": [], "next": None, "prev": None},
            NODE_CODEC,
        )
        self._height = 1
        self._distinct = 0

    @property
    def distinct(self) -> int:
        """Distinct keys currently stored (planner cardinality input)."""
        return self._distinct

    @property
    def height(self) -> int:
        return self._height

    # -- point operations ------------------------------------------------------

    def insert(self, key: tuple, row_id: int) -> None:
        """Add ``row_id`` to ``key``'s bucket, splitting along the way up."""
        split = self._insert_into(self._root, key, row_id)
        if split is not None:
            separator, new_pid = split
            self._root = self._store.allocate(
                {"leaf": False, "keys": [separator], "kids": [self._root, new_pid]},
                NODE_CODEC,
            )
            self._height += 1

    def delete(self, key: tuple, row_id: int) -> None:
        """Remove ``row_id`` from ``key``'s bucket; absent pairs are no-ops."""
        self._delete_from(self._root, key, row_id)
        root = self._store.read(self._root, NODE_CODEC)
        if not root["leaf"] and len(root["kids"]) == 1:
            collapsed = self._root
            self._root = root["kids"][0]
            self._store.free(collapsed)
            self._height -= 1

    def lookup(self, key: tuple) -> list[int]:
        """The sorted row-id bucket of ``key`` (empty list when absent)."""
        pid = self._root
        while True:
            node = self._store.read(pid, NODE_CODEC)
            if node["leaf"]:
                break
            pid = node["kids"][bisect_right(node["keys"], key)]
        position = bisect_left(node["keys"], key)
        if position < len(node["keys"]) and node["keys"][position] == key:
            return list(node["vals"][position])
        return []

    def contains(self, key: tuple) -> bool:
        return bool(self.lookup(key))

    # -- insertion internals ---------------------------------------------------

    def _insert_into(self, pid: int, key: tuple, row_id: int):
        """Insert below ``pid``; returns ``(separator, new_pid)`` on split."""
        node = self._store.fetch(pid, NODE_CODEC)
        try:
            if node["leaf"]:
                keys = node["keys"]
                position = bisect_left(keys, key)
                if position < len(keys) and keys[position] == key:
                    bucket = node["vals"][position]
                    spot = bisect_left(bucket, row_id)
                    if spot >= len(bucket) or bucket[spot] != row_id:
                        bucket.insert(spot, row_id)
                else:
                    keys.insert(position, key)
                    node["vals"].insert(position, [row_id])
                    self._distinct += 1
                self._store.mark_dirty(pid)
                if len(keys) > self._order:
                    return self._split_leaf(pid, node)
                return None
            position = bisect_right(node["keys"], key)
            split = self._insert_into(node["kids"][position], key, row_id)
            if split is None:
                return None
            separator, new_pid = split
            node["keys"].insert(position, separator)
            node["kids"].insert(position + 1, new_pid)
            self._store.mark_dirty(pid)
            if len(node["keys"]) > self._order:
                return self._split_internal(pid, node)
            return None
        finally:
            self._store.unpin(pid)

    def _split_leaf(self, pid: int, node: dict):
        mid = (len(node["keys"]) + 1) // 2
        right = {
            "leaf": True,
            "keys": node["keys"][mid:],
            "vals": node["vals"][mid:],
            "next": node["next"],
            "prev": pid,
        }
        del node["keys"][mid:]
        del node["vals"][mid:]
        right_pid = self._store.allocate(right, NODE_CODEC)
        if right["next"] is not None:
            self._repoint_prev(right["next"], right_pid)
        node["next"] = right_pid
        self._store.mark_dirty(pid)
        return right["keys"][0], right_pid

    def _split_internal(self, pid: int, node: dict):
        mid = len(node["keys"]) // 2
        separator = node["keys"][mid]
        right = {
            "leaf": False,
            "keys": node["keys"][mid + 1 :],
            "kids": node["kids"][mid + 1 :],
        }
        del node["keys"][mid:]
        del node["kids"][mid + 1 :]
        right_pid = self._store.allocate(right, NODE_CODEC)
        self._store.mark_dirty(pid)
        return separator, right_pid

    def _repoint_prev(self, pid: int, prev_pid: int | None) -> None:
        node = self._store.fetch(pid, NODE_CODEC)
        try:
            node["prev"] = prev_pid
            self._store.mark_dirty(pid)
        finally:
            self._store.unpin(pid)

    # -- deletion internals ----------------------------------------------------

    def _delete_from(self, pid: int, key: tuple, row_id: int) -> bool:
        """Delete below ``pid``; True when the node underflowed."""
        node = self._store.fetch(pid, NODE_CODEC)
        try:
            if node["leaf"]:
                keys = node["keys"]
                position = bisect_left(keys, key)
                if position >= len(keys) or keys[position] != key:
                    return False
                bucket = node["vals"][position]
                spot = bisect_left(bucket, row_id)
                if spot >= len(bucket) or bucket[spot] != row_id:
                    return False
                bucket.pop(spot)
                if not bucket:
                    keys.pop(position)
                    node["vals"].pop(position)
                    self._distinct -= 1
                self._store.mark_dirty(pid)
                return len(keys) < self._min_keys
            position = bisect_right(node["keys"], key)
            if not self._delete_from(node["kids"][position], key, row_id):
                return False
            self._rebalance(pid, node, position)
            self._store.mark_dirty(pid)
            return len(node["keys"]) < self._min_keys
        finally:
            self._store.unpin(pid)

    def _rebalance(self, parent_pid: int, parent: dict, position: int) -> None:
        """Fix the underflowed child at ``parent["kids"][position]``.

        Borrow a key from a sibling with slack; otherwise merge with one
        (a merged pair always fits: both nodes are at or below minimum).
        """
        child_pid = parent["kids"][position]
        child = self._store.fetch(child_pid, NODE_CODEC)
        try:
            if position > 0 and self._borrow_from_left(parent, position, child):
                self._store.mark_dirty(child_pid)
                return
            if position + 1 < len(parent["kids"]) and self._borrow_from_right(
                parent, position, child
            ):
                self._store.mark_dirty(child_pid)
                return
        finally:
            self._store.unpin(child_pid)
        if position > 0:
            self._merge(parent, position - 1)
        else:
            self._merge(parent, position)

    def _borrow_from_left(self, parent: dict, position: int, child: dict) -> bool:
        left_pid = parent["kids"][position - 1]
        left = self._store.fetch(left_pid, NODE_CODEC)
        try:
            if len(left["keys"]) <= self._min_keys:
                return False
            if child["leaf"]:
                child["keys"].insert(0, left["keys"].pop())
                child["vals"].insert(0, left["vals"].pop())
                parent["keys"][position - 1] = child["keys"][0]
            else:
                child["keys"].insert(0, parent["keys"][position - 1])
                parent["keys"][position - 1] = left["keys"].pop()
                child["kids"].insert(0, left["kids"].pop())
            self._store.mark_dirty(left_pid)
            return True
        finally:
            self._store.unpin(left_pid)

    def _borrow_from_right(self, parent: dict, position: int, child: dict) -> bool:
        right_pid = parent["kids"][position + 1]
        right = self._store.fetch(right_pid, NODE_CODEC)
        try:
            if len(right["keys"]) <= self._min_keys:
                return False
            if child["leaf"]:
                child["keys"].append(right["keys"].pop(0))
                child["vals"].append(right["vals"].pop(0))
                parent["keys"][position] = right["keys"][0]
            else:
                child["keys"].append(parent["keys"][position])
                parent["keys"][position] = right["keys"].pop(0)
                child["kids"].append(right["kids"].pop(0))
            self._store.mark_dirty(right_pid)
            return True
        finally:
            self._store.unpin(right_pid)

    def _merge(self, parent: dict, position: int) -> None:
        """Fold ``kids[position + 1]`` into ``kids[position]`` and free it."""
        left_pid = parent["kids"][position]
        right_pid = parent["kids"][position + 1]
        left = self._store.fetch(left_pid, NODE_CODEC)
        right = self._store.fetch(right_pid, NODE_CODEC)
        try:
            if left["leaf"]:
                left["keys"].extend(right["keys"])
                left["vals"].extend(right["vals"])
                left["next"] = right["next"]
                if right["next"] is not None:
                    self._repoint_prev(right["next"], left_pid)
            else:
                left["keys"].append(parent["keys"][position])
                left["keys"].extend(right["keys"])
                left["kids"].extend(right["kids"])
            parent["keys"].pop(position)
            parent["kids"].pop(position + 1)
            self._store.mark_dirty(left_pid)
        finally:
            self._store.unpin(right_pid)
            self._store.unpin(left_pid)
        self._store.free(right_pid)

    # -- range scans -----------------------------------------------------------

    def item_range(
        self,
        low_key: tuple | None,
        high_key: tuple | None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        descending: bool = False,
    ):
        """Yield ``(key, sorted_row_ids)`` with keys inside the bounds.

        Bounds of None are unbounded.  Each leaf's content is copied before
        anything from it is yielded, so a consumer that mutates the tree (or
        lets eviction recycle the node) between yields still sees a
        consistent snapshot of that leaf.
        """
        if descending:
            yield from self._range_descending(
                low_key, high_key, low_inclusive, high_inclusive
            )
        else:
            yield from self._range_ascending(
                low_key, high_key, low_inclusive, high_inclusive
            )

    def _descend_left(self, low_key: tuple | None) -> int:
        """The leftmost leaf that can hold keys ≥ ``low_key``."""
        pid = self._root
        while True:
            node = self._store.read(pid, NODE_CODEC)
            if node["leaf"]:
                return pid
            if low_key is None:
                pid = node["kids"][0]
            else:
                pid = node["kids"][bisect_right(node["keys"], low_key)]

    def _descend_right(self, high_key: tuple | None) -> int:
        """The rightmost leaf that can hold keys ≤ ``high_key``."""
        pid = self._root
        while True:
            node = self._store.read(pid, NODE_CODEC)
            if node["leaf"]:
                return pid
            if high_key is None:
                pid = node["kids"][-1]
            else:
                pid = node["kids"][bisect_right(node["keys"], high_key)]

    def _range_ascending(self, low_key, high_key, low_inclusive, high_inclusive):
        pid = self._descend_left(low_key)
        while pid is not None:
            node = self._store.read(pid, NODE_CODEC)
            keys = list(node["keys"])
            buckets = [list(bucket) for bucket in node["vals"]]
            pid = node["next"]
            for key, bucket in zip(keys, buckets):
                if low_key is not None:
                    if key < low_key or (key == low_key and not low_inclusive):
                        continue
                if high_key is not None:
                    if key > high_key or (key == high_key and not high_inclusive):
                        return
                yield key, bucket

    def _range_descending(self, low_key, high_key, low_inclusive, high_inclusive):
        pid = self._descend_right(high_key)
        while pid is not None:
            node = self._store.read(pid, NODE_CODEC)
            keys = list(node["keys"])
            buckets = [list(bucket) for bucket in node["vals"]]
            pid = node["prev"]
            for key, bucket in zip(reversed(keys), reversed(buckets)):
                if high_key is not None:
                    if key > high_key or (key == high_key and not high_inclusive):
                        continue
                if low_key is not None:
                    if key < low_key or (key == low_key and not low_inclusive):
                        return
                yield key, bucket

    # -- lifecycle -------------------------------------------------------------

    def clear(self) -> None:
        """Drop every key, freeing all pages, and start from an empty leaf."""
        self._free_subtree(self._root)
        self._root = self._store.allocate(
            {"leaf": True, "keys": [], "vals": [], "next": None, "prev": None},
            NODE_CODEC,
        )
        self._height = 1
        self._distinct = 0

    def drop(self) -> None:
        """Free every page; the tree is unusable afterwards (index dropped)."""
        self._free_subtree(self._root)
        self._root = None
        self._height = 0
        self._distinct = 0

    def _free_subtree(self, pid: int) -> None:
        node = self._store.read(pid, NODE_CODEC)
        if not node["leaf"]:
            for kid in node["kids"]:
                self._free_subtree(kid)
        self._store.free(pid)

    # -- verification (tests) --------------------------------------------------

    def verify_invariants(self) -> None:
        """Assert the structural invariants; used by the property tests.

        Checks: keys strictly sorted within nodes and across the leaf chain,
        every leaf at the same depth (``height``), non-root nodes at or above
        minimum occupancy, subtree key ranges respecting parent separators,
        leaf links consistent both ways, and the distinct counter exact.
        """
        leaves: list[int] = []
        self._verify_node(self._root, 1, None, None, leaves, is_root=True)
        chained: list[int] = []
        pid = leaves[0] if leaves else self._root
        prev = None
        while pid is not None:
            node = self._store.read(pid, NODE_CODEC)
            assert node["leaf"], f"leaf chain reached internal node {pid}"
            assert node["prev"] == prev, f"leaf {pid} has wrong prev pointer"
            chained.append(pid)
            prev = pid
            pid = node["next"]
        assert chained == leaves, "leaf chain order differs from tree order"
        all_keys = [
            key
            for leaf in leaves
            for key in self._store.read(leaf, NODE_CODEC)["keys"]
        ]
        assert all_keys == sorted(all_keys), "leaf chain keys not sorted"
        assert len(set(all_keys)) == len(all_keys), "duplicate keys across leaves"
        assert len(all_keys) == self._distinct, "distinct counter out of sync"

    def _verify_node(self, pid, depth, low, high, leaves, is_root=False) -> None:
        node = self._store.read(pid, NODE_CODEC)
        keys = node["keys"]
        assert keys == sorted(set(keys)), f"node {pid} keys not strictly sorted"
        for key in keys:
            assert low is None or key >= low, f"node {pid} key below separator"
            assert high is None or key < high, f"node {pid} key above separator"
        if node["leaf"]:
            assert depth == self._height, f"leaf {pid} at depth {depth}"
            if not is_root:
                assert len(keys) >= self._min_keys, f"leaf {pid} underflowed"
            for bucket in node["vals"]:
                assert bucket == sorted(set(bucket)), f"leaf {pid} bucket unsorted"
                assert bucket, f"leaf {pid} holds an empty bucket"
            leaves.append(pid)
            return
        assert len(node["kids"]) == len(keys) + 1, f"node {pid} kids/keys mismatch"
        minimum = 1 if is_root else self._min_keys
        assert len(keys) >= minimum, f"internal node {pid} underflowed"
        bounds = [low, *keys, high]
        for child, (child_low, child_high) in zip(
            node["kids"], zip(bounds, bounds[1:])
        ):
            self._verify_node(child, depth + 1, child_low, child_high, leaves)
