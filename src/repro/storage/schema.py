"""Column and table schemas."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import SchemaError
from repro.storage.types import DataType, coerce_value


@dataclass(frozen=True)
class ColumnSchema:
    """Schema of one column."""

    name: str
    data_type: DataType
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False

    def coerce(self, value: object) -> object:
        """Coerce a value to this column's type, enforcing NOT NULL."""
        if value is None and (self.not_null or self.primary_key):
            raise SchemaError(f"column {self.name!r} is NOT NULL")
        return coerce_value(value, self.data_type, self.name)


@dataclass
class TableSchema:
    """Schema of one table: an ordered list of columns."""

    name: str
    columns: list[ColumnSchema] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            seen.add(lowered)

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    @property
    def primary_key(self) -> ColumnSchema | None:
        for column in self.columns:
            if column.primary_key:
                return column
        return None

    def has_column(self, name: str) -> bool:
        return any(column.name.lower() == name.lower() for column in self.columns)

    def column(self, name: str) -> ColumnSchema:
        for column in self.columns:
            if column.name.lower() == name.lower():
                return column
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def coerce_row(self, row: dict[str, object]) -> dict[str, object]:
        """Return a full row dict (all columns) with values coerced.

        Unknown keys raise; missing columns become NULL (subject to NOT NULL).
        """
        known = {column.name.lower(): column for column in self.columns}
        for key in row:
            if key.lower() not in known:
                raise SchemaError(f"table {self.name!r} has no column {key!r}")
        lowered_row = {key.lower(): value for key, value in row.items()}
        return {
            column.name: column.coerce(lowered_row.get(column.name.lower()))
            for column in self.columns
        }

    def with_column_added(self, column: ColumnSchema) -> "TableSchema":
        if self.has_column(column.name):
            raise SchemaError(f"table {self.name!r} already has column {column.name!r}")
        return TableSchema(name=self.name, columns=self.columns + [column])

    def with_column_dropped(self, name: str) -> "TableSchema":
        if not self.has_column(name):
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        remaining = [column for column in self.columns if column.name.lower() != name.lower()]
        if not remaining:
            raise SchemaError(f"cannot drop the last column of table {self.name!r}")
        return TableSchema(name=self.name, columns=remaining)

    def with_column_renamed(self, old: str, new: str) -> "TableSchema":
        if not self.has_column(old):
            raise SchemaError(f"table {self.name!r} has no column {old!r}")
        if self.has_column(new):
            raise SchemaError(f"table {self.name!r} already has column {new!r}")
        columns = [
            replace(column, name=new) if column.name.lower() == old.lower() else column
            for column in self.columns
        ]
        return TableSchema(name=self.name, columns=columns)

    def renamed(self, new_name: str) -> "TableSchema":
        return TableSchema(name=new_name, columns=list(self.columns))
