"""Incremental aggregate accumulators and aggregate-spec collection.

The vectorized aggregation path (``HashAggregate`` / ``SortedGroupAggregate``
in :mod:`repro.storage.operators`) replaces the executor's historical
materialize-then-rewalk grouping: instead of buffering every input row into
per-group lists and re-evaluating each aggregate reference in SELECT, HAVING,
and ORDER BY against those lists, each distinct aggregate expression becomes
one *accumulator* per group that every input row updates exactly once.

* :func:`collect_aggregate_specs` walks a SELECT statement and returns the
  deduplicated :class:`AggregateSpec` list plus a map from every aggregate
  AST node to its spec's slot.  It returns None when the statement uses a
  shape the incremental path does not reproduce bit-for-bit (aggregates
  nested inside CASE/function arguments, argument-less SUM/AVG/MIN/MAX, ...);
  the executor then falls back to the historical path, which raises exactly
  the errors those shapes always raised.
* Accumulators expose ``update_batch(values)`` / ``merge(other)`` /
  ``finish()``.  ``merge`` is what makes parallel partial aggregation cheap:
  each scan partition aggregates privately and only O(groups) accumulator
  state — never O(rows) row dicts — crosses the thread barrier.
* The columnar lane (:mod:`repro.storage.kernels`) adds
  ``update_column(values, positions)``: the same fold over a full column
  list plus a selection vector of live positions, so a ColumnBatch group
  update never gathers a per-group value list first.  Each variant must
  visit positions in ascending order — it reproduces ``update_batch`` over
  the gathered values exactly (same left-fold, same first-seen ties).

Numeric care: ``SUM``/``AVG`` fold batches with ``sum(values, start=total)``,
which reproduces the historical single ``sum(all_values)`` left-fold
byte-for-byte on the sequential path; a parallel merge folds per-partition
totals in partition order, which is deterministic but may group float
additions differently (exact for integral sums).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.ast_nodes import (
    BinaryOp,
    CaseExpression,
    ColumnRef,
    Expression,
    FunctionCall,
    SelectStatement,
    Star,
    UnaryOp,
)
from repro.sql.formatter import format_expression
from repro.storage.types import sort_key


def hashable_value(value: object) -> object:
    """A hashable stand-in for a SQL value (lists/dicts become tuples)."""
    if isinstance(value, list):
        return tuple(value)
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    return value


# ---------------------------------------------------------------------------
# Accumulators
# ---------------------------------------------------------------------------


class CountStarAccumulator:
    """``COUNT(*)``: counts rows; ``update_batch`` receives the row list."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def update_batch(self, rows) -> None:
        self.count += len(rows)

    def update_column(self, values, positions) -> None:
        self.count += len(positions)  # COUNT(*) needs no column at all

    def merge(self, other: "CountStarAccumulator") -> None:
        self.count += other.count

    def finish(self):
        return self.count


class CountAccumulator:
    """``COUNT(expr)``: counts non-NULL argument values."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def update_batch(self, values) -> None:
        self.count += sum(1 for value in values if value is not None)

    def update_column(self, values, positions) -> None:
        self.count += sum(1 for i in positions if values[i] is not None)

    def merge(self, other: "CountAccumulator") -> None:
        self.count += other.count

    def finish(self):
        return self.count


class SumAccumulator:
    """``SUM(expr)``: running total over non-NULL values (NULL when none).

    ``sum(batch, start=total)`` continues the exact left-fold the historical
    one-shot ``sum(values)`` performed, so sequential results are
    byte-identical even for floats.
    """

    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total = None

    def update_batch(self, values) -> None:
        present = [value for value in values if value is not None]
        if present:
            self.total = sum(present) if self.total is None else sum(present, self.total)

    def update_column(self, values, positions) -> None:
        present = [value for i in positions if (value := values[i]) is not None]
        if present:
            self.total = sum(present) if self.total is None else sum(present, self.total)

    def merge(self, other: "SumAccumulator") -> None:
        if other.total is not None:
            self.total = other.total if self.total is None else self.total + other.total

    def finish(self):
        return self.total


class AvgAccumulator:
    """``AVG(expr)``: running total and count (NULL when no non-NULL input)."""

    __slots__ = ("total", "count")

    def __init__(self) -> None:
        self.total = None
        self.count = 0

    def update_batch(self, values) -> None:
        present = [value for value in values if value is not None]
        if present:
            self.total = sum(present) if self.total is None else sum(present, self.total)
            self.count += len(present)

    def update_column(self, values, positions) -> None:
        present = [value for i in positions if (value := values[i]) is not None]
        if present:
            self.total = sum(present) if self.total is None else sum(present, self.total)
            self.count += len(present)

    def merge(self, other: "AvgAccumulator") -> None:
        if other.total is not None:
            self.total = other.total if self.total is None else self.total + other.total
            self.count += other.count

    def finish(self):
        if self.count == 0:
            return None
        return self.total / self.count


class _ExtremeAccumulator:
    """Shared MIN/MAX machinery: keeps the first-seen extreme value.

    Ties keep the earliest occurrence (a strict comparison against the held
    value), matching ``min``/``max`` over the full value list.
    """

    __slots__ = ("best", "has_value")

    def __init__(self) -> None:
        self.best = None
        self.has_value = False

    def _consider(self, candidate) -> None:
        raise NotImplementedError

    def update_batch(self, values) -> None:
        for value in values:
            if value is None:
                continue
            if not self.has_value:
                self.best = value
                self.has_value = True
            else:
                self._consider(value)

    def update_column(self, values, positions) -> None:
        for i in positions:
            value = values[i]
            if value is None:
                continue
            if not self.has_value:
                self.best = value
                self.has_value = True
            else:
                self._consider(value)

    def merge(self, other: "_ExtremeAccumulator") -> None:
        if other.has_value:
            self.update_batch([other.best])

    def finish(self):
        return self.best if self.has_value else None


class MinAccumulator(_ExtremeAccumulator):
    __slots__ = ()

    def _consider(self, candidate) -> None:
        if sort_key(candidate) < sort_key(self.best):
            self.best = candidate


class MaxAccumulator(_ExtremeAccumulator):
    __slots__ = ()

    def _consider(self, candidate) -> None:
        if sort_key(candidate) > sort_key(self.best):
            self.best = candidate


class _DistinctAccumulator:
    """Shared DISTINCT machinery: first-seen-ordered unique non-NULL values.

    The ordered dict keyed by :func:`hashable_value` reproduces the historical
    first-occurrence dedup, so ``SUM(DISTINCT ...)`` folds values in exactly
    the order the one-shot path did; merging unions in partition order.
    """

    __slots__ = ("seen",)

    def __init__(self) -> None:
        self.seen: dict = {}

    def update_batch(self, values) -> None:
        seen = self.seen
        for value in values:
            if value is None:
                continue
            key = hashable_value(value)
            if key not in seen:
                seen[key] = value

    def update_column(self, values, positions) -> None:
        seen = self.seen
        for i in positions:
            value = values[i]
            if value is None:
                continue
            key = hashable_value(value)
            if key not in seen:
                seen[key] = value

    def merge(self, other: "_DistinctAccumulator") -> None:
        seen = self.seen
        for key, value in other.seen.items():
            if key not in seen:
                seen[key] = value


class CountDistinctAccumulator(_DistinctAccumulator):
    __slots__ = ()

    def finish(self):
        return len(self.seen)


class SumDistinctAccumulator(_DistinctAccumulator):
    __slots__ = ()

    def finish(self):
        if not self.seen:
            return None
        return sum(self.seen.values())


class AvgDistinctAccumulator(_DistinctAccumulator):
    __slots__ = ()

    def finish(self):
        if not self.seen:
            return None
        return sum(self.seen.values()) / len(self.seen)


#: Accumulator factory per (aggregate name, distinct) pair.  MIN/MAX ignore
#: DISTINCT — deduplication cannot change an extreme, and both variants keep
#: the first occurrence on ties.
_ACCUMULATORS = {
    ("COUNT", False): CountAccumulator,
    ("COUNT", True): CountDistinctAccumulator,
    ("SUM", False): SumAccumulator,
    ("SUM", True): SumDistinctAccumulator,
    ("AVG", False): AvgAccumulator,
    ("AVG", True): AvgDistinctAccumulator,
    ("MIN", False): MinAccumulator,
    ("MIN", True): MinAccumulator,
    ("MAX", False): MaxAccumulator,
    ("MAX", True): MaxAccumulator,
}


# ---------------------------------------------------------------------------
# Spec collection
# ---------------------------------------------------------------------------


@dataclass
class AggregateSpec:
    """One distinct aggregate computation within a grouped SELECT.

    ``argument`` is the argument expression, or None for ``COUNT(*)`` /
    bare ``COUNT()`` (whose accumulator receives the row list itself).
    """

    name: str
    argument: Expression | None
    distinct: bool

    def make(self):
        """A fresh accumulator for one group."""
        return _ACCUMULATORS[(self.name, self.distinct)]()


@dataclass
class AggregateCollection:
    """The deduplicated specs of a statement plus the node → slot map.

    ``slots`` maps ``id(FunctionCall node)`` to the index of the spec that
    computes it, so HAVING / projection / ORDER BY evaluation reads finished
    accumulator states instead of recomputing over buffered rows.  Keying by
    node identity is safe across plan-cache re-binding: cached plans re-use
    the same template statement objects.
    """

    specs: list[AggregateSpec]
    slots: dict[int, int]


def collect_aggregate_specs(statement: SelectStatement) -> AggregateCollection | None:
    """Collect the statement's aggregates for the incremental path.

    Returns None when any aggregate appears in a shape the accumulator path
    does not support — nested inside CASE or non-aggregate function arguments
    (the historical path raises its placement error), argument-less
    SUM/AVG/MIN/MAX or ``SUM(*)`` (the historical path raises its
    requires-an-argument / evaluation error), or an aggregate inside another
    aggregate's argument.  The executor falls back to the historical
    evaluation, preserving those errors verbatim.
    """
    specs: list[AggregateSpec] = []
    slots: dict[int, int] = {}
    keys: dict[object, int] = {}

    def register(call: FunctionCall) -> bool:
        name = call.name.upper()
        star = not call.args or isinstance(call.args[0], Star)
        if star and name != "COUNT":
            return False
        argument = None if star else call.args[0]
        if argument is not None and has_aggregate(argument):
            return False
        key = _spec_key(name, argument, call.distinct)
        slot = keys.get(key)
        if slot is None:
            slot = len(specs)
            keys[key] = slot
            specs.append(
                AggregateSpec(
                    name=name,
                    argument=argument,
                    distinct=bool(call.distinct) and argument is not None,
                )
            )
        slots[id(call)] = slot
        return True

    def visit(expr: Expression) -> bool:
        if isinstance(expr, FunctionCall) and expr.is_aggregate:
            return register(expr)
        if isinstance(expr, BinaryOp):
            return visit(expr.left) and visit(expr.right)
        if isinstance(expr, UnaryOp):
            return visit(expr.operand)
        # Any aggregate buried deeper (CASE, function arguments, subqueries)
        # is a placement error on the historical path — fall back to it.
        return not has_aggregate(expr)

    for item in statement.select_items:
        if isinstance(item.expression, Star):
            continue
        if not visit(item.expression):
            return None
    if statement.having is not None and not visit(statement.having):
        return None
    for order_item in statement.order_by:
        if not visit(order_item.expression):
            return None
    return AggregateCollection(specs=specs, slots=slots)


def _spec_key(name: str, argument: Expression | None, distinct: bool):
    """Dedup key for a spec: structural for pure-column arguments, identity
    otherwise.

    Literal-bearing arguments format identically once parameterized
    (``SUM(x + ?)``) even when their parameters carry different constants, so
    only literal-free column expressions are deduplicated by text; anything
    else keeps one spec per AST node.
    """
    if argument is None:
        return (name, "*", False)
    if _plain_columns_only(argument):
        return (name, bool(distinct), format_expression(argument).lower())
    return (name, bool(distinct), id(argument))


def _plain_columns_only(expr: Expression) -> bool:
    if isinstance(expr, ColumnRef):
        return True
    if isinstance(expr, BinaryOp):
        return _plain_columns_only(expr.left) and _plain_columns_only(expr.right)
    if isinstance(expr, UnaryOp):
        return _plain_columns_only(expr.operand)
    return False


# ---------------------------------------------------------------------------
# Aggregate detection (canonical home; the planner re-exports these)
# ---------------------------------------------------------------------------


def statement_has_aggregates(statement: SelectStatement) -> bool:
    expressions = [item.expression for item in statement.select_items]
    if statement.having is not None:
        expressions.append(statement.having)
    expressions.extend(item.expression for item in statement.order_by)
    return any(has_aggregate(expr) for expr in expressions)


def has_aggregate(expr: Expression) -> bool:
    if isinstance(expr, FunctionCall) and expr.is_aggregate:
        return True
    if isinstance(expr, BinaryOp):
        return has_aggregate(expr.left) or has_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return has_aggregate(expr.operand)
    if isinstance(expr, FunctionCall):
        return any(has_aggregate(arg) for arg in expr.args)
    if isinstance(expr, CaseExpression):
        return any(
            has_aggregate(condition) or has_aggregate(value)
            for condition, value in expr.whens
        ) or (expr.default is not None and has_aggregate(expr.default))
    return False
