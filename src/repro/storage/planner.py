"""Cost-based logical/physical planner for SELECT and DML statements.

The planner is the middle layer of the engine's parse → plan → execute
pipeline.  Given a parsed :class:`~repro.sql.ast_nodes.SelectStatement` it

1. splits the WHERE clause into conjuncts and pushes single-table conjuncts
   down to their leaf,
2. chooses an *access path* per leaf — an :class:`~repro.storage.operators.IndexScan`
   when an equality conjunct matches a :class:`~repro.storage.indexes.HashIndex`,
   a :class:`~repro.storage.operators.RangeScan` when range conjuncts
   (``<``, ``<=``, ``>``, ``>=``, ``BETWEEN``) match a
   :class:`~repro.storage.indexes.SortedIndex` (bounds on the same column are
   merged into one scan), otherwise a
   :class:`~repro.storage.operators.SeqScan`; when both an equality and a
   range pick exist the estimated-cheaper one wins,
3. orders the joins greedily by estimated cardinality (table statistics when
   cached, cheap index/row-count estimates otherwise) and picks a physical
   join per step — an index nested-loop join when the inner table has a hash
   index on the join key and the outer side is estimated smaller than an
   inner scan, else a hash join with the estimated-smaller side as build side,
4. leaves conjuncts that cannot be placed (subqueries, outer-join columns) as
   a residual :class:`~repro.storage.operators.Filter` above the join tree,
5. eliminates the ORDER BY sort when the query reads one table and the (single)
   sort key matches a sorted index — the scan then streams rows in index order
   and LIMIT short-circuits instead of materializing for a sort.

UPDATE and DELETE go through the same access-path selection via
:meth:`Planner.plan_update` / :meth:`Planner.plan_delete`, which return a
:class:`DmlPlan` whose scan yields candidate ``(row_id, row)`` pairs — an
indexed WHERE prunes the heap instead of scanning it.

The result is a :class:`SelectPlan` whose operator tree the executor streams;
:meth:`SelectPlan.explain_lines` renders the plan for ``Database.explain``.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    DeleteStatement,
    ExistsSubquery,
    Expression,
    FromItem,
    FunctionCall,
    InList,
    InSubquery,
    Join,
    Literal,
    ScalarSubquery,
    SelectStatement,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
    UpdateStatement,
)
from repro.sql.formatter import format_expression
from repro.storage.aggregates import (
    collect_aggregate_specs,
    has_aggregate,
    statement_has_aggregates,
)
from repro.storage.exec_settings import DEFAULT_SETTINGS, ExecutionSettings
from repro.storage.operators import (
    EmptyRow,
    Filter,
    HashAggregate,
    HashJoin,
    IndexLookupJoin,
    IndexScan,
    NestedLoopJoin,
    Operator,
    OuterJoin,
    ParallelSeqScan,
    RangeScan,
    SeqScan,
    SortedGroupAggregate,
    SubqueryScan,
    equality_probe_keys,
    range_probe_key,
)
from repro.storage.statistics import group_count_estimate, join_key_overlap
from repro.storage.types import compare_values

#: Cardinality guess for derived tables (no statistics available at plan time).
DEFAULT_SUBQUERY_ESTIMATE = 100.0

#: Fallback selectivities when neither statistics nor indexes can help.
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_SELECTIVITY = 0.33

#: Batched CPU cost model: the engine pays per *batch* dispatched through the
#: operator tree plus a (much smaller) per-tuple touch cost, not one uniform
#: per-row charge — which is exactly why large scans amortize and tiny scans
#: don't care.  Units are arbitrary but shared across the constants below.
CPU_TUPLE_COST = 0.01
#: Per-tuple touch cost on the columnar kernel path.  Kernels run
#: branch-light loops over typed arrays instead of per-row dict wrapping and
#: predicate dispatch, so a columnar tuple is costed cheaper than a row-batch
#: tuple — which matters to relative decisions (e.g. whether a parallel
#: scan's fan-out still pays once the per-tuple work it divides has shrunk).
KERNEL_TUPLE_COST = 0.004
CPU_BATCH_COST = 1.0
#: Fixed coordination cost of fanning a scan across a worker pool (pool
#: dispatch, span slicing, ordered re-assembly).  Deliberately small so the
#: configured ``parallel_threshold`` — not this constant — is the binding
#: gate; the cost comparison only vetoes degenerate cases (a handful of rows
#: over a low threshold) where fan-out provably cannot pay.
PARALLEL_SETUP_COST = 4.0
#: Fixed per-worker cost of the forked partial-aggregation lane: a fork,
#: its copy-on-write page faults, and pickling the merged accumulator state
#: back through a pipe.  Much larger than :data:`PARALLEL_SETUP_COST`
#: because a process is a much heavier lane than a pool thread.
PROCESS_SETUP_COST = 8.0
#: Cost of faulting one heap page through the buffer pool (decode on miss,
#: LRU bookkeeping on hit).  Deliberately small relative to the per-row
#: constants — a page holds ~128 rows, so page I/O shades scan costs toward
#: page-frugal paths without flipping row-count-driven decisions.
PAGE_IO_COST = 0.05


def scan_cpu_cost(
    rows: float,
    settings: ExecutionSettings,
    workers: int = 1,
    pages: float = 0.0,
    columnar: bool = False,
) -> float:
    """Cost of a (possibly parallel) heap scan under the batch model.

    Tuple, batch, and page-fault work divides across workers (page-aligned
    spans mean each page is faulted by exactly one worker); a parallel scan
    additionally pays :data:`PARALLEL_SETUP_COST` once.  The planner compares
    the 1-worker and N-worker costs to decide when a :class:`ParallelSeqScan`
    is worth it.  ``columnar`` charges :data:`KERNEL_TUPLE_COST` per tuple
    instead of :data:`CPU_TUPLE_COST`: kernel loops do less per row, so the
    divisible work a fan-out could amortize is smaller.
    """
    rows = max(rows, 0.0)
    tuple_cost = KERNEL_TUPLE_COST if columnar else CPU_TUPLE_COST
    batches = max(1.0, math.ceil(rows / max(settings.batch_size, 1)))
    cost = (
        rows * tuple_cost + batches * CPU_BATCH_COST + pages * PAGE_IO_COST
    ) / max(workers, 1)
    if workers > 1:
        cost += PARALLEL_SETUP_COST
    return cost


@dataclass
class PlanExplanation:
    """The result of ``Database.explain``: a statement kind plus plan lines."""

    statement_kind: str
    lines: list[str] = field(default_factory=list)
    root: Operator | None = None
    #: True when the rendered plan was served from the plan cache (the lines
    #: then show the template form with ``'?'`` parameter placeholders).
    plan_cache_hit: bool = False
    #: True for EXPLAIN ANALYZE: the statement was executed and the lines
    #: carry per-node actual rows/batches/wall time plus a summary line.
    analyzed: bool = False
    #: The execution's statistics when ``analyzed`` (None otherwise).
    stats: object | None = None

    def text(self) -> str:
        return "\n".join(self.lines)

    def __str__(self) -> str:
        return self.text()

    def __contains__(self, needle: str) -> bool:
        return needle in self.text()


@dataclass
class SelectPlan:
    """A planned SELECT: the FROM/WHERE operator pipeline plus metadata.

    ``bindings`` lists the relation's bindings in FROM-clause order (the order
    ``SELECT *`` expands in), independent of the join order the planner chose.
    """

    statement: SelectStatement
    root: Operator
    bindings: list[tuple[str, list[str]]]
    output_columns: list[str]
    #: True when a sorted index already delivers the *entire* ORDER BY order,
    #: so the executor streams instead of materializing for a sort.
    sort_eliminated: bool = False
    #: Number of leading ORDER BY keys the scan already delivers in order.
    #: Equal to ``len(order_by)`` when ``sort_eliminated``; with a composite
    #: ORDER BY whose first key matches a sorted index it is 1 and the
    #: executor partial-sorts runs of equal leading-key values instead of
    #: materializing and sorting the whole result.
    sort_prefix: int = 0
    #: Vectorized aggregation stage (:class:`~repro.storage.operators.HashAggregate`
    #: or :class:`~repro.storage.operators.SortedGroupAggregate`) whose child is
    #: ``root``, or None when the statement has no aggregation — or uses a
    #: shape only the executor's historical fallback reproduces.
    aggregate: Operator | None = None
    #: True when planning folded constants so that positional parameter
    #: re-binding is unsound (mirrors ``Planner.rebind_unsafe``); the plan
    #: cache refuses such plans and the plan verifier's parameter-
    #: reachability check stands down for them.
    rebind_unsafe: bool = False

    def explain_lines(self, node_stats: dict | None = None) -> list[str]:
        """Render the plan tree; ``node_stats`` (EXPLAIN ANALYZE) annotates
        every operator with its actuals and the Project line with the
        statement's output cardinality."""
        lines: list[str] = []
        depth = 0
        statement = self.statement

        def push(text: str) -> None:
            nonlocal depth
            lines.append("  " * depth + text)
            depth += 1

        if statement.limit is not None or statement.offset:
            parts = []
            if statement.limit is not None:
                parts.append(f"limit={statement.limit}")
            if statement.offset:
                parts.append(f"offset={statement.offset}")
            push(f"Limit [{', '.join(parts)}]")
        if statement.distinct:
            push("Distinct")
        if statement.order_by and not self.sort_eliminated:
            keys = ", ".join(
                format_expression(item.expression) + ("" if item.ascending else " DESC")
                for item in statement.order_by
            )
            if self.sort_prefix:
                prefix = ", ".join(
                    format_expression(item.expression)
                    for item in statement.order_by[: self.sort_prefix]
                )
                push(f"PartialSort [{keys}] (prefix {prefix} via index order)")
            else:
                push(f"Sort [{keys}]")
        if self.aggregate is not None:
            text = self.aggregate.label()
            if node_stats is not None:
                stats = node_stats.get(id(self.aggregate))
                text += (
                    f" ({stats.describe()})" if stats is not None else " (never executed)"
                )
            push(text)
        elif statement.group_by or statement_has_aggregates(statement):
            # Fallback shapes aggregate inside the executor, not the plan tree.
            detail = ""
            if statement.group_by:
                detail = " [group by " + ", ".join(
                    format_expression(expr) for expr in statement.group_by
                ) + "]"
            if statement.having is not None:
                detail += f" having ({format_expression(statement.having)})"
            push("Aggregate" + detail)
        project = f"Project [{', '.join(self.output_columns)}]"
        if node_stats is not None and "output_rows" in node_stats:
            project += f" (actual rows={node_stats['output_rows']})"
        push(project)
        lines.extend(self.root.explain_lines(depth, node_stats))
        return lines

    def text(self) -> str:
        return "\n".join(self.explain_lines())


@dataclass
class DmlPlan:
    """A planned UPDATE or DELETE: the access path locating the target rows.

    ``scan`` is a :class:`~repro.storage.operators.SeqScan`,
    :class:`~repro.storage.operators.IndexScan`, or
    :class:`~repro.storage.operators.RangeScan` whose ``pairs(ctx)`` yields
    candidate ``(row_id, row)`` pairs; ``residual`` holds the WHERE conjuncts
    the access path does not already guarantee (evaluated per candidate row by
    the database before mutating).
    """

    kind: str  # "update" | "delete"
    table: object
    binding: str
    scan: Operator
    residual: list[Expression] = field(default_factory=list)
    #: Same contract as :attr:`SelectPlan.rebind_unsafe`.
    rebind_unsafe: bool = False

    @property
    def root(self) -> Operator:
        """The full operator tree (residual filter included), for consumers
        walking the plan rather than reading its rendered lines."""
        if self.residual:
            return Filter(self.scan, self.residual, estimate=self.scan.estimate)
        return self.scan

    def explain_lines(self) -> list[str]:
        lines = [f"{self.kind.title()} [{self.table.name}]"]
        depth = 1
        if self.residual:
            predicates = " AND ".join(format_expression(p) for p in self.residual)
            lines.append("  " * depth + f"Filter ({predicates})")
            depth += 1
        lines.extend(self.scan.explain_lines(depth))
        return lines

    def text(self) -> str:
        return "\n".join(self.explain_lines())


@dataclass
class _Leaf:
    """One FROM-clause leaf while the planner is working on it."""

    binding: str
    columns: list[str]
    table: object | None = None          # Table for base tables, None for subqueries
    subplan: SelectPlan | None = None
    predicates: list[Expression] = field(default_factory=list)
    operator: Operator | None = None
    estimate: float = 0.0
    seq_cost: float = 0.0                # cost of producing the leaf by scanning


class Planner:
    """Plans SELECT statements against a table provider.

    ``table_provider`` must expose ``table(name) -> Table``.  With
    ``use_indexes=False`` the planner only emits sequential scans and hash
    joins — used by benchmarks to quantify access-path quality.
    """

    def __init__(self, table_provider, use_indexes: bool = True):
        self._provider = table_provider
        self._use_indexes = use_indexes
        self._settings: ExecutionSettings = (
            getattr(table_provider, "exec_settings", None) or DEFAULT_SETTINGS
        )
        #: Set when a produced plan folded constants in a way that makes
        #: positional re-binding unsound (e.g. redundant range bounds merged,
        #: dropping a conjunct whose literal no longer appears in the plan).
        #: The plan cache refuses to cache such plans.
        self.rebind_unsafe = False

    # -- public entry point ----------------------------------------------------

    def plan_select(self, statement: SelectStatement) -> SelectPlan:
        conjuncts = _split_conjuncts(statement.where)
        sort_prefix = 0
        leaves: list[_Leaf] = []
        pending_outer: list[tuple[str, Operator, Expression | None]] = []
        if not statement.from_items:
            root: Operator = EmptyRow()
            if conjuncts:
                root = Filter(root, conjuncts, estimate=1.0)
            bindings: list[tuple[str, list[str]]] = []
        else:
            for item in statement.from_items:
                flattened, extra_conjuncts, outer_joins = self._flatten(item)
                conjuncts.extend(extra_conjuncts)
                leaves.extend(flattened)
                pending_outer.extend(outer_joins)
            root, residual = self._plan_joins(leaves, conjuncts)
            for join_type, right_op, condition in pending_outer:
                if join_type == "RIGHT":
                    # A RIGHT join is a LEFT join with the operands swapped.
                    root = OuterJoin(
                        right_op, root, condition, "LEFT", estimate=root.estimate
                    )
                else:
                    root = OuterJoin(
                        root, right_op, condition, join_type, estimate=root.estimate
                    )
            if residual:
                root = Filter(root, residual, estimate=root.estimate)
            # SELECT * expands in FROM-clause order regardless of join order.
            bindings = [(leaf.binding, leaf.columns) for leaf in leaves]
            for _, right_op, _ in pending_outer:
                bindings.extend(right_op.bindings)
            if (
                len(leaves) == 1
                and not pending_outer
                and leaves[0].table is not None
            ):
                sort_prefix, root = self._try_sort_elimination(
                    statement, leaves[0], root
                )
        aggregate: Operator | None = None
        if (
            statement.group_by or statement_has_aggregates(statement)
        ) and self._settings.vectorized_aggregation:
            aggregate, root = self._plan_aggregate(
                statement, root, leaves, pending_outer
            )
        return SelectPlan(
            statement=statement,
            root=root,
            bindings=bindings,
            output_columns=compute_output_columns(statement, bindings),
            sort_eliminated=bool(sort_prefix)
            and sort_prefix >= len(statement.order_by),
            sort_prefix=sort_prefix,
            aggregate=aggregate,
            rebind_unsafe=self.rebind_unsafe,
        )

    def _plan_aggregate(
        self,
        statement: SelectStatement,
        root: Operator,
        leaves: list[_Leaf],
        pending_outer: list,
    ) -> tuple[Operator | None, Operator]:
        """Place the vectorized aggregate stage above the pipeline.

        Returns ``(aggregate, root)``.  ``aggregate`` is None when the
        statement's aggregate shapes are beyond the incremental accumulators
        (the executor then falls back to its historical grouping, which also
        raises the historical placement/argument errors).  ``root`` may be
        rewritten to an ordered scan when the streaming
        :class:`SortedGroupAggregate` is chosen.
        """
        collection = collect_aggregate_specs(statement)
        if collection is None:
            return None, root
        estimate = self._estimate_group_count(statement, leaves, root)
        if (
            self._use_indexes
            and statement.group_by
            and isinstance(statement.group_by[0], ColumnRef)
            and len(leaves) == 1
            and not pending_outer
            and leaves[0].table is not None
        ):
            ordered = self._try_group_ordered_scan(statement, leaves[0], root)
            if ordered is not None:
                return (
                    SortedGroupAggregate(
                        ordered,
                        statement.group_by,
                        collection,
                        estimate,
                        having=statement.having,
                    ),
                    ordered,
                )
        aggregate = HashAggregate(
            root,
            statement.group_by,
            collection,
            estimate,
            having=statement.having,
        )
        aggregate.process_partials = self._process_partials(root, estimate)
        return aggregate, root

    def _process_partials(self, root: Operator, group_estimate: float) -> int:
        """Forked partial-aggregation workers for this pipeline (1 = off).

        The fork lane pays real setup (fork + COW faults + pickling merged
        accumulator state back), so it is gated on all of: the knob is on,
        the platform can fork, the scan is big enough
        (``process_threshold`` estimated input rows), and the group count is
        small relative to the input — a high-cardinality GROUP BY would ship
        back nearly as much state as the rows it read, erasing the win.
        """
        settings = self._settings
        if settings.process_workers <= 1 or not hasattr(os, "fork"):
            return 1
        input_rows = max(root.estimate, 0.0)
        if input_rows < settings.process_threshold:
            return 1
        if group_estimate > max(1024.0, input_rows / 8.0):
            return 1
        # The in-process alternative the fork lane must beat is the columnar
        # fused coordinator (kernel-cost tuples); each forked child runs the
        # row-path partial loop, so its divided work is costed at row-path
        # tuples plus the heavy per-process setup.
        workers = settings.process_workers
        fork_cost = (
            scan_cpu_cost(input_rows, settings, workers)
            + PROCESS_SETUP_COST * workers
        )
        columnar = settings.columnar_kernels and settings.compile_expressions
        if fork_cost >= scan_cpu_cost(input_rows, settings, columnar=columnar):
            return 1
        return workers

    def _try_group_ordered_scan(
        self, statement: SelectStatement, leaf: _Leaf, root: Operator
    ) -> Operator | None:
        """An ordered scan delivering the leading GROUP BY key, or None.

        The streaming :class:`SortedGroupAggregate` needs equal leading keys
        adjacent.  An existing :class:`RangeScan` on that column (a range
        predicate picked it) already streams in key order — use the root
        as-is.  A plain :class:`SeqScan` is rewritten into an unbounded
        ordered walk only when the ORDER BY also starts with the same column:
        an index-ordered walk pays a per-row ``table.get`` and is slower than
        a heap scan feeding :class:`HashAggregate`, so order must be worth
        buying (and a :class:`ParallelSeqScan` is never given up — parallel
        partial aggregation beats streaming).
        """
        expr = statement.group_by[0]
        if expr.table is not None and expr.table.lower() != leaf.binding.lower():
            return None
        table = leaf.table
        if not table.schema.has_column(expr.name):
            return None
        canonical = table.schema.column(expr.name).name
        if table.sorted_index_for(canonical) is None:
            return None
        parent: Filter | None = None
        node = root
        while isinstance(node, Filter):
            parent, node = node, node.child
        if isinstance(node, RangeScan):
            if node.column.lower() != canonical.lower():
                return None
            return root
        if type(node) is not SeqScan:
            return None
        if not statement.order_by:
            return None
        order_item = statement.order_by[0]
        order_expr = order_item.expression
        if not isinstance(order_expr, ColumnRef):
            return None
        if order_expr.name.lower() != canonical.lower():
            return None
        if (
            order_expr.table is not None
            and order_expr.table.lower() != leaf.binding.lower()
        ):
            return None
        if order_expr.table is None and any(
            (item.alias or "").lower() == order_expr.name.lower()
            for item in statement.select_items
        ):
            # ORDER BY resolves select-list aliases before source columns.
            return None
        ordered = RangeScan(
            table,
            leaf.binding,
            canonical,
            low=None,
            high=None,
            low_inclusive=True,
            high_inclusive=True,
            estimate=node.estimate,
            descending=not order_item.ascending,
        )
        if parent is None:
            return ordered
        parent.child = ordered
        parent.children = (ordered,)
        return root

    def _estimate_group_count(
        self, statement: SelectStatement, leaves: list[_Leaf], root: Operator
    ) -> float:
        """Estimated output groups: the product of per-key distinct counts
        (statistics/indexes when available), capped at the input estimate."""
        if not statement.group_by:
            return 1.0
        distincts: list[float] = []
        for expr in statement.group_by:
            if isinstance(expr, ColumnRef):
                leaf = self._group_key_leaf(expr, leaves)
                if leaf is not None:
                    distincts.append(self._distinct_estimate(leaf, expr.name))
                    continue
            distincts.append(1.0 / DEFAULT_EQ_SELECTIVITY)
        return group_count_estimate(distincts, max(root.estimate, 1.0))

    @staticmethod
    def _group_key_leaf(expr: ColumnRef, leaves: list[_Leaf]) -> "_Leaf | None":
        """The unique leaf providing a GROUP BY column, or None (ambiguous)."""
        if expr.table is not None:
            target = expr.table.lower()
            for leaf in leaves:
                if leaf.binding.lower() == target:
                    return leaf
            return None
        name = expr.name.lower()
        owners = [
            leaf
            for leaf in leaves
            if any(column.lower() == name for column in leaf.columns)
        ]
        if len(owners) == 1:
            return owners[0]
        return None

    def _try_sort_elimination(
        self, statement: SelectStatement, leaf: _Leaf, root: Operator
    ) -> tuple[int, Operator]:
        """Serve the leading ORDER BY key from a sorted index when possible.

        Returns ``(prefix, root)``: ``prefix`` is the number of leading ORDER
        BY keys the (possibly rewritten) scan delivers in order — 0 when the
        sort must stay.  A single-key ORDER BY is eliminated outright; for a
        composite ORDER BY (``ORDER BY user, ts``) the scan provides the
        first key's order and the executor partial-sorts each run of equal
        leading-key values by the remaining keys, so nothing ever
        materializes the full result for a sort.

        The root is rewritten when a ``SeqScan`` can become an unbounded
        ordered ``RangeScan``; an existing ``RangeScan`` on the sort column
        just flips its direction; an equality ``IndexScan`` on a different
        column is left alone (sorting its few matches is cheaper than an
        ordered full walk).
        """
        if not self._use_indexes or not statement.order_by:
            return 0, root
        if statement.group_by or statement_has_aggregates(statement):
            return 0, root
        order_item = statement.order_by[0]
        expr = order_item.expression
        if not isinstance(expr, ColumnRef):
            return 0, root
        if expr.table is not None and expr.table.lower() != leaf.binding.lower():
            return 0, root
        if expr.table is None and any(
            (item.alias or "").lower() == expr.name.lower()
            for item in statement.select_items
        ):
            # ORDER BY resolves select-list aliases before source columns.
            return 0, root
        table = leaf.table
        if not table.schema.has_column(expr.name):
            return 0, root
        canonical = table.schema.column(expr.name).name
        if table.sorted_index_for(canonical) is None:
            return 0, root
        parent: Filter | None = None
        node = root
        while isinstance(node, Filter):
            parent, node = node, node.child
        if isinstance(node, RangeScan):
            if node.column.lower() != canonical.lower():
                return 0, root
            node.descending = not order_item.ascending
            return 1, root
        if isinstance(node, SeqScan):
            ordered = RangeScan(
                table,
                leaf.binding,
                canonical,
                low=None,
                high=None,
                low_inclusive=True,
                high_inclusive=True,
                estimate=node.estimate,
                descending=not order_item.ascending,
            )
            if parent is None:
                return 1, ordered
            parent.child = ordered
            parent.children = (ordered,)
            return 1, root
        return 0, root

    def plan_update(self, statement: UpdateStatement) -> DmlPlan:
        """Plan an UPDATE: choose the access path locating the target rows."""
        return self._plan_dml(statement.table, statement.where, "update")

    def plan_delete(self, statement: DeleteStatement) -> DmlPlan:
        """Plan a DELETE: choose the access path locating the target rows."""
        return self._plan_dml(statement.table, statement.where, "delete")

    def _plan_dml(self, table_name: str, where: Expression | None, kind: str) -> DmlPlan:
        table = self._provider.table(table_name)
        leaf = _Leaf(
            binding=table_name,
            columns=list(table.schema.column_names),
            table=table,
        )
        conjuncts = _split_conjuncts(where)
        column_owner = self._column_ownership([leaf])
        pushable: list[Expression] = []
        residual: list[Expression] = []
        for conjunct in conjuncts:
            bindings = _conjunct_bindings(conjunct, column_owner)
            if bindings is not None and bindings <= {leaf.binding.lower()}:
                pushable.append(conjunct)
            else:
                # Subqueries (and misqualified references) cannot drive an
                # index; they are re-checked per candidate row.
                residual.append(conjunct)
        leaf.predicates = pushable
        # DML candidate scans stream sequential (row_id, row) pairs and are
        # materialized before mutation; a parallel scan buys nothing there.
        self._build_access_path(leaf, allow_parallel=False)
        scan = leaf.operator
        filtered: list[Expression] = []
        while isinstance(scan, Filter):
            filtered.extend(scan.predicates)
            scan = scan.child
        return DmlPlan(
            kind=kind,
            table=table,
            binding=table_name,
            scan=scan,
            residual=filtered + residual,
            rebind_unsafe=self.rebind_unsafe,
        )

    # -- FROM flattening --------------------------------------------------------

    def _flatten(
        self, item: FromItem
    ) -> tuple[list[_Leaf], list[Expression], list[tuple[str, Operator, Expression | None]]]:
        """Flatten an item into leaves, join conjuncts, and pending outer joins."""
        if isinstance(item, TableRef):
            table = self._provider.table(item.name)
            return (
                [
                    _Leaf(
                        binding=item.binding,
                        columns=list(table.schema.column_names),
                        table=table,
                    )
                ],
                [],
                [],
            )
        if isinstance(item, SubqueryRef):
            subplan = self.plan_select(item.subquery)
            return (
                [
                    _Leaf(
                        binding=item.alias,
                        columns=list(subplan.output_columns),
                        subplan=subplan,
                    )
                ],
                [],
                [],
            )
        if isinstance(item, Join):
            if item.join_type in ("INNER", "CROSS"):
                left_leaves, left_conjuncts, left_outer = self._flatten(item.left)
                right_leaves, right_conjuncts, right_outer = self._flatten(item.right)
                conjuncts = left_conjuncts + right_conjuncts
                if item.condition is not None:
                    conjuncts.extend(_split_conjuncts(item.condition))
                return left_leaves + right_leaves, conjuncts, left_outer + right_outer
            # LEFT / RIGHT / FULL outer joins apply after the inner-join tree.
            left_leaves, left_conjuncts, left_outer = self._flatten(item.left)
            right_op = self._plan_item_fully(item.right)
            outer = left_outer + [(item.join_type, right_op, item.condition)]
            return left_leaves, left_conjuncts, outer
        raise ExecutionError(f"unsupported FROM item {type(item).__name__}")

    def _plan_item_fully(self, item: FromItem) -> Operator:
        leaves, conjuncts, outer = self._flatten(item)
        op, residual = self._plan_joins(leaves, conjuncts)
        for join_type, right_op, condition in outer:
            if join_type == "RIGHT":
                op = OuterJoin(right_op, op, condition, "LEFT", estimate=op.estimate)
            else:
                op = OuterJoin(op, right_op, condition, join_type, estimate=op.estimate)
        if residual:
            op = Filter(op, residual, estimate=op.estimate)
        return op

    # -- join planning -----------------------------------------------------------

    def _plan_joins(
        self, leaves: list[_Leaf], conjuncts: list[Expression]
    ) -> tuple[Operator, list[Expression]]:
        column_owner = self._column_ownership(leaves)
        leaf_bindings = {leaf.binding.lower() for leaf in leaves}
        leaf_by_binding = {leaf.binding.lower(): leaf for leaf in leaves}

        # Push single-binding conjuncts down to their leaf; conjuncts whose
        # binding set is undecidable (subqueries, ambiguous columns) or not
        # among these leaves stay in the shared pool.
        remaining: list[Expression] = []
        per_leaf: dict[str, list[Expression]] = {}
        for conjunct in conjuncts:
            bindings = _conjunct_bindings(conjunct, column_owner)
            if (
                bindings is not None
                and len(bindings) == 1
                and next(iter(bindings)) in leaf_bindings
            ):
                per_leaf.setdefault(next(iter(bindings)), []).append(conjunct)
            else:
                remaining.append(conjunct)
        for leaf in leaves:
            leaf.predicates = per_leaf.get(leaf.binding.lower(), [])
            self._build_access_path(leaf)

        # Greedy join order: start from the smallest estimated leaf, then
        # repeatedly attach the smallest leaf connected by an equi-join
        # (falling back to the smallest remaining leaf as a cross join).
        start_index = min(
            range(len(leaves)), key=lambda i: (leaves[i].estimate, i)
        )
        first = leaves[start_index]
        current: Operator = first.operator
        current_est = first.estimate
        current_bindings = {first.binding.lower()}
        pending = [leaf for i, leaf in enumerate(leaves) if i != start_index]
        unjoined = remaining
        while pending:
            best_key = None
            best_index = 0
            best_equi: list[tuple[Expression, ColumnRef, ColumnRef]] = []
            for index, leaf in enumerate(pending):
                equi = _find_equi_joins(
                    unjoined, current_bindings, {leaf.binding.lower()}, column_owner
                )
                key = (0 if equi else 1, leaf.estimate, index)
                if best_key is None or key < best_key:
                    best_key, best_index, best_equi = key, index, equi
            leaf = pending.pop(best_index)
            current, current_est = self._join(
                current, current_est, leaf, best_equi, column_owner, leaf_by_binding
            )
            used = {id(conjunct) for conjunct, _, _ in best_equi}
            unjoined = [c for c in unjoined if id(c) not in used]
            current_bindings.add(leaf.binding.lower())
            # Apply any conjunct now fully covered by the joined bindings.
            applicable = []
            still_remaining = []
            for conjunct in unjoined:
                bindings = _conjunct_bindings(conjunct, column_owner)
                if bindings is not None and bindings <= current_bindings:
                    applicable.append(conjunct)
                else:
                    still_remaining.append(conjunct)
            if applicable:
                current = Filter(current, applicable, estimate=current_est)
            unjoined = still_remaining
        return current, unjoined

    def _join(
        self,
        current: Operator,
        current_est: float,
        leaf: _Leaf,
        equi: list[tuple[Expression, ColumnRef, ColumnRef]],
        column_owner: dict[str, set[str]] | None = None,
        leaf_by_binding: dict[str, "_Leaf"] | None = None,
    ) -> tuple[Operator, float]:
        """Attach ``leaf`` to ``current``, choosing the physical join."""
        if equi:
            joined_est = self._equi_join_estimate(
                current_est, leaf, equi[0], column_owner, leaf_by_binding
            )
            indexed = self._indexed_join_key(leaf, equi)
            if indexed is not None and current_est < leaf.seq_cost:
                _, outer_key, leaf_key = indexed
                residual = [
                    conjunct for conjunct, _, key in equi if key is not leaf_key
                ]
                residual.extend(leaf.predicates)
                probe = IndexScan(
                    leaf.table,
                    leaf.binding,
                    leaf.table.schema.column(leaf_key.name).name,
                    outer_key,
                    estimate=max(
                        leaf.seq_cost / self._distinct_estimate(leaf, leaf_key.name),
                        1.0,
                    ),
                    probe=True,
                )
                return (
                    IndexLookupJoin(current, probe, outer_key, residual, joined_est),
                    joined_est,
                )
            pairs = [(left, right) for _, left, right in equi]
            build_left = current_est <= leaf.estimate
            return (
                HashJoin(current, leaf.operator, pairs, build_left, joined_est),
                joined_est,
            )
        joined_est = max(current_est, 1.0) * max(leaf.estimate, 1.0)
        return NestedLoopJoin(current, leaf.operator, joined_est), joined_est

    def _equi_join_estimate(
        self,
        current_est: float,
        leaf: _Leaf,
        equi: tuple[Expression, ColumnRef, ColumnRef],
        column_owner: dict[str, set[str]] | None,
        leaf_by_binding: dict[str, "_Leaf"] | None,
    ) -> float:
        """Calibrated equi-join fanout: ``|L|·|R| / max(d_L, d_R)`` over the
        *overlapping* part of the two key domains.

        Distinct counts come from both join columns (classical containment
        assumption), not just the inner side; when both columns carry cached
        histograms, each side's cardinality and distinct count are scaled to
        the fraction of its rows whose key falls inside the intersection of
        the two value ranges (:func:`~repro.storage.statistics.join_key_overlap`),
        so joins between partially or non-overlapping key domains stop being
        costed as if every key matched.
        """
        _, outer_column, leaf_column = equi
        outer_leaf: _Leaf | None = None
        if column_owner is not None and leaf_by_binding is not None:
            outer_binding = _resolve_binding(outer_column, column_owner)
            if outer_binding is not None:
                outer_leaf = leaf_by_binding.get(outer_binding)
        inner_distinct = self._distinct_estimate(leaf, leaf_column.name)
        outer_distinct = (
            self._distinct_estimate(outer_leaf, outer_column.name)
            if outer_leaf is not None
            else 1.0
        )
        outer_fraction, inner_fraction = join_key_overlap(
            self._column_statistics(outer_leaf, outer_column.name),
            self._column_statistics(leaf, leaf_column.name),
        )
        denominator = max(
            outer_distinct * outer_fraction, inner_distinct * inner_fraction, 1.0
        )
        return max(
            1.0,
            (current_est * outer_fraction)
            * (max(leaf.estimate, 1.0) * inner_fraction)
            / denominator,
        )

    def _column_statistics(self, leaf: "_Leaf | None", column_name: str):
        """The cached ColumnStatistics of a leaf column, or None."""
        if leaf is None or leaf.table is None:
            return None
        stats = leaf.table.cached_statistics
        if stats is None:
            return None
        return stats.columns.get(column_name.lower())

    def _indexed_join_key(
        self, leaf: _Leaf, equi: list[tuple[Expression, ColumnRef, ColumnRef]]
    ) -> tuple[Expression, ColumnRef, ColumnRef] | None:
        """The first equi pair whose leaf-side column has a hash index."""
        if not self._use_indexes or leaf.table is None:
            return None
        for conjunct, outer_key, leaf_key in equi:
            if not leaf.table.schema.has_column(leaf_key.name):
                continue
            if leaf.table.index_for(leaf_key.name) is not None:
                return conjunct, outer_key, leaf_key
        return None

    # -- access paths -------------------------------------------------------------

    def _build_access_path(self, leaf: _Leaf, allow_parallel: bool = True) -> None:
        """Choose the leaf's operator and estimates (sets fields in place)."""
        if leaf.table is None:
            leaf.seq_cost = DEFAULT_SUBQUERY_ESTIMATE
            estimate = DEFAULT_SUBQUERY_ESTIMATE
            op: Operator = SubqueryScan(leaf.subplan, leaf.binding, estimate)
            if leaf.predicates:
                estimate *= DEFAULT_SELECTIVITY ** len(leaf.predicates)
                op = Filter(op, leaf.predicates, estimate=estimate)
            leaf.operator, leaf.estimate = op, estimate
            return
        table = leaf.table
        row_count = float(len(table))
        # A full scan faults every heap page through the buffer pool; index
        # and range picks below overwrite seq_cost with their (page-frugal)
        # estimates, so the page term also nudges choices toward indexes.
        leaf.seq_cost = max(row_count, 1.0) + table.page_count * PAGE_IO_COST
        index_pick = self._pick_index_conjunct(table, leaf.predicates)
        range_pick = self._pick_range_conjuncts(table, leaf.predicates)
        if index_pick is not None and (
            range_pick is None or index_pick[3] <= range_pick.selectivity
        ):
            conjunct, column, value_expr, selectivity = index_pick
            estimate = max(row_count * selectivity, 0.0)
            op = IndexScan(table, leaf.binding, column, value_expr, estimate)
            leaf.seq_cost = max(estimate, 1.0)
            rest = [p for p in leaf.predicates if p is not conjunct]
        elif range_pick is not None:
            if range_pick.merged_bounds:
                self.rebind_unsafe = True
            estimate = max(row_count * range_pick.selectivity, 0.0)
            op = RangeScan(
                table,
                leaf.binding,
                range_pick.column,
                range_pick.low,
                range_pick.high,
                range_pick.low_inclusive,
                range_pick.high_inclusive,
                estimate,
            )
            leaf.seq_cost = max(estimate, 1.0)
            used = {id(conjunct) for conjunct in range_pick.conjuncts}
            rest = [p for p in leaf.predicates if id(p) not in used]
        else:
            estimate = row_count
            op = self._heap_scan(table, leaf.binding, estimate, allow_parallel)
            rest = list(leaf.predicates)
        if rest:
            for predicate in rest:
                estimate *= self._predicate_selectivity(table, predicate)
            op = Filter(op, rest, estimate=estimate)
        leaf.operator, leaf.estimate = op, estimate

    def _heap_scan(
        self, table, binding: str, estimate: float, allow_parallel: bool
    ) -> Operator:
        """A full heap scan: parallel when the batch cost model says it pays.

        Both gates must pass — the table crosses the configured row threshold
        *and* :func:`scan_cpu_cost` with the configured worker count beats the
        single-worker cost (which it stops doing for small heaps, where the
        fixed fan-out setup dominates).
        """
        settings = self._settings
        workers = settings.parallel_workers
        row_count = len(table)
        pages = table.page_count
        # Deliberately costed with row-path tuples even when columnar kernels
        # are on: the work a fan-out divides is heap-row *fetching*, which the
        # columnar representation does not shrink (kernels cheapen the filter
        # and projection work downstream — see KERNEL_TUPLE_COST's use in the
        # process-lane gate, where a kernel coordinator is the alternative).
        if (
            allow_parallel
            and workers > 1
            and row_count >= settings.parallel_threshold
            and scan_cpu_cost(row_count, settings, workers, pages=pages)
            < scan_cpu_cost(row_count, settings, pages=pages)
        ):
            return ParallelSeqScan(table, binding, estimate, workers=workers)
        return SeqScan(table, binding, estimate)

    def _pick_index_conjunct(
        self, table, predicates: list[Expression]
    ) -> tuple[Expression, str, Expression, float] | None:
        """The most selective ``column = constant`` conjunct with a hash index."""
        if not self._use_indexes:
            return None
        best = None
        for predicate in predicates:
            match = _constant_equality(predicate)
            if match is None:
                continue
            column, value_expr = match
            if not table.schema.has_column(column.name):
                continue
            canonical = table.schema.column(column.name).name
            if table.index_for(canonical) is None:
                continue
            if isinstance(value_expr, Literal) and (
                equality_probe_keys(
                    value_expr.value, table.schema.column(canonical).data_type
                )
                is None
            ):
                # The comparison semantics need a compare_values scan; do not
                # promise an IndexScan the runtime would degrade anyway.
                continue
            selectivity = self._predicate_selectivity(table, predicate)
            candidate = (predicate, canonical, value_expr, selectivity)
            if best is None or selectivity < best[3]:
                best = candidate
        return best

    def _pick_range_conjuncts(
        self, table, predicates: list[Expression]
    ) -> "_RangePick | None":
        """The most selective set of range conjuncts served by a sorted index.

        Range conjuncts (``<``, ``<=``, ``>``, ``>=``, ``BETWEEN``) with
        literal bounds on the same sorted-indexed column are merged into one
        bounded scan (the tightest lower and upper bound win); among columns,
        the lowest estimated selectivity wins.
        """
        if not self._use_indexes:
            return None
        per_column: dict[str, list[tuple[Expression, list[tuple[str, Literal]]]]] = {}
        for predicate in predicates:
            match = _range_bounds(predicate)
            if match is None:
                continue
            column, bounds = match
            if not table.schema.has_column(column.name):
                continue
            canonical = table.schema.column(column.name).name
            if table.sorted_index_for(canonical) is None:
                continue
            data_type = table.schema.column(canonical).data_type
            if any(
                range_probe_key(literal.value, data_type) is None
                for _, literal in bounds
            ):
                # The comparison cannot be expressed as sorted-index keys; do
                # not promise a RangeScan the runtime would degrade anyway.
                continue
            per_column.setdefault(canonical, []).append((predicate, bounds))
        best: _RangePick | None = None
        for canonical, entries in per_column.items():
            low: tuple[Literal, bool] | None = None
            high: tuple[Literal, bool] | None = None
            low_candidates = 0
            high_candidates = 0
            for _, bounds in entries:
                for op, literal in bounds:
                    if op in (">", ">="):
                        low_candidates += 1
                        candidate = (literal, op == ">=")
                        low = candidate if low is None else _tighter_bound(low, candidate, lower=True)
                    else:
                        high_candidates += 1
                        candidate = (literal, op == "<=")
                        high = candidate if high is None else _tighter_bound(high, candidate, lower=False)
            selectivity = self._range_selectivity(table, canonical, low, high)
            pick = _RangePick(
                conjuncts=[conjunct for conjunct, _ in entries],
                column=canonical,
                low=low[0] if low else None,
                high=high[0] if high else None,
                low_inclusive=low[1] if low else True,
                high_inclusive=high[1] if high else True,
                selectivity=selectivity,
                # Competing bounds on one side mean a literal was folded away;
                # the scan no longer represents every covered conjunct.
                merged_bounds=low_candidates > 1 or high_candidates > 1,
            )
            if best is None or selectivity < best.selectivity:
                best = pick
        return best

    # -- estimation ----------------------------------------------------------------

    def _range_selectivity(
        self,
        table,
        column: str,
        low: tuple[Literal, bool] | None,
        high: tuple[Literal, bool] | None,
    ) -> float:
        stats = table.cached_statistics
        if stats is not None:
            return stats.range_selectivity(
                column,
                low[0].value if low else None,
                high[0].value if high else None,
                low[1] if low else True,
                high[1] if high else True,
            )
        sides = (low is not None) + (high is not None)
        return DEFAULT_SELECTIVITY ** sides

    def _predicate_selectivity(self, table, predicate: Expression) -> float:
        comparison = _simple_comparison(predicate)
        if comparison is None:
            return DEFAULT_SELECTIVITY
        column, op, value = comparison
        stats = table.cached_statistics
        if stats is not None:
            return stats.selectivity(column.name, op, value)
        if op == "=":
            index = table.index_for(column.name) if table.schema.has_column(column.name) else None
            if index is not None and index.distinct_values():
                return 1.0 / index.distinct_values()
            return DEFAULT_EQ_SELECTIVITY
        return DEFAULT_SELECTIVITY

    def _distinct_estimate(self, leaf: _Leaf, column_name: str) -> float:
        """Estimated distinct count of a leaf column (join-size denominator)."""
        if leaf.table is None:
            return max(leaf.estimate, 1.0)
        if leaf.table.schema.has_column(column_name):
            index = leaf.table.index_for(column_name)
            if index is not None and index.distinct_values():
                return float(index.distinct_values())
            stats = leaf.table.cached_statistics
            if stats is not None:
                column_stats = stats.columns.get(column_name.lower())
                if column_stats is not None:
                    return float(max(column_stats.distinct_count, 1))
        return float(max(len(leaf.table), 1))

    # -- helpers --------------------------------------------------------------------

    def _column_ownership(self, leaves: list[_Leaf]) -> dict[str, set[str]]:
        """Map lower-cased column name → set of binding names providing it."""
        ownership: dict[str, set[str]] = {}
        for leaf in leaves:
            for column in leaf.columns:
                ownership.setdefault(column.lower(), set()).add(leaf.binding.lower())
        return ownership


# ---------------------------------------------------------------------------
# Statement-level helpers (shared with the executor)
# ---------------------------------------------------------------------------


def compute_output_columns(
    statement: SelectStatement, bindings: list[tuple[str, list[str]]]
) -> list[str]:
    """Output column names of a SELECT, given the FROM-ordered bindings."""
    columns: list[str] = []
    for item in statement.select_items:
        expr = item.expression
        if isinstance(expr, Star):
            columns.extend(star_columns(expr, bindings))
        elif item.alias:
            columns.append(item.alias)
        elif isinstance(expr, ColumnRef):
            columns.append(expr.name)
        elif isinstance(expr, FunctionCall):
            columns.append(expr.name.lower())
        else:
            columns.append(f"column{len(columns) + 1}")
    return columns


def star_columns(star: Star, bindings: list[tuple[str, list[str]]]) -> list[str]:
    """Expand ``*`` or ``alias.*`` against the FROM-ordered bindings."""
    names: list[str] = []
    for binding, columns in bindings:
        if star.table is None or binding.lower() == star.table.lower():
            names.extend(columns)
    if not names and star.table is not None:
        raise ExecutionError(f"unknown table alias {star.table!r} in select list")
    return names


# ``has_aggregate`` / ``statement_has_aggregates`` now live in
# :mod:`repro.storage.aggregates` (imported above and re-exported here for the
# executor and existing callers).


# ---------------------------------------------------------------------------
# Conjunct analysis
# ---------------------------------------------------------------------------


def _split_conjuncts(expr: Expression | None) -> list[Expression]:
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _conjunct_bindings(
    expr: Expression, column_owner: dict[str, set[str]]
) -> set[str] | None:
    """The set of bindings a conjunct references, or None when undecidable.

    Undecidable cases (subqueries, unqualified columns owned by several
    bindings) force the conjunct to be evaluated only after the full join.
    """
    bindings: set[str] = set()
    for node in _walk_no_subquery(expr):
        if isinstance(node, (InSubquery, ExistsSubquery, ScalarSubquery)):
            return None
        if isinstance(node, ColumnRef):
            if node.table:
                bindings.add(node.table.lower())
            else:
                owners = column_owner.get(node.name.lower(), set())
                if len(owners) == 1:
                    bindings.add(next(iter(owners)))
                else:
                    return None
    return bindings


def _walk_no_subquery(expr: Expression):
    yield expr
    if isinstance(expr, BinaryOp):
        yield from _walk_no_subquery(expr.left)
        yield from _walk_no_subquery(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from _walk_no_subquery(expr.operand)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from _walk_no_subquery(arg)
    elif isinstance(expr, InList):
        yield from _walk_no_subquery(expr.expr)
        for value in expr.values:
            yield from _walk_no_subquery(value)
    elif isinstance(expr, Between):
        yield from _walk_no_subquery(expr.expr)
        yield from _walk_no_subquery(expr.low)
        yield from _walk_no_subquery(expr.high)
    elif isinstance(expr, CaseExpression):
        for condition, value in expr.whens:
            yield from _walk_no_subquery(condition)
            yield from _walk_no_subquery(value)
        if expr.default is not None:
            yield from _walk_no_subquery(expr.default)
    elif isinstance(expr, (InSubquery, ExistsSubquery, ScalarSubquery)):
        if isinstance(expr, InSubquery):
            yield from _walk_no_subquery(expr.expr)


def _find_equi_joins(
    conjuncts: list[Expression],
    left_bindings: set[str],
    right_bindings: set[str],
    column_owner: dict[str, set[str]],
) -> list[tuple[Expression, ColumnRef, ColumnRef]]:
    """Equality conjuncts connecting the two binding sets, as (expr, left, right)."""
    matches = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, BinaryOp) or conjunct.op != "=":
            continue
        if not isinstance(conjunct.left, ColumnRef) or not isinstance(
            conjunct.right, ColumnRef
        ):
            continue
        first = _resolve_binding(conjunct.left, column_owner)
        second = _resolve_binding(conjunct.right, column_owner)
        if first is None or second is None:
            continue
        if first in left_bindings and second in right_bindings:
            matches.append((conjunct, conjunct.left, conjunct.right))
        elif second in left_bindings and first in right_bindings:
            matches.append((conjunct, conjunct.right, conjunct.left))
    return matches


def _resolve_binding(column: ColumnRef, column_owner: dict[str, set[str]]) -> str | None:
    if column.table:
        return column.table.lower()
    owners = column_owner.get(column.name.lower(), set())
    if len(owners) == 1:
        return next(iter(owners))
    return None


def _constant_equality(expr: Expression) -> tuple[ColumnRef, Expression] | None:
    """Match ``column = constant-expression`` in either orientation."""
    if not isinstance(expr, BinaryOp) or expr.op != "=":
        return None
    for column, value in ((expr.left, expr.right), (expr.right, expr.left)):
        if isinstance(column, ColumnRef) and _is_constant(value):
            return column, value
    return None


def _is_constant(expr: Expression) -> bool:
    """True when the expression references no columns and no subqueries."""
    for node in _walk_no_subquery(expr):
        if isinstance(node, (ColumnRef, Star, InSubquery, ExistsSubquery, ScalarSubquery)):
            return False
    return True


@dataclass
class _RangePick:
    """A planner-chosen RangeScan: merged bounds plus the conjuncts it covers."""

    conjuncts: list[Expression]
    column: str
    low: Literal | None
    high: Literal | None
    low_inclusive: bool
    high_inclusive: bool
    selectivity: float
    #: True when redundant bounds on one side were folded into the tighter one
    #: (the folded conjunct's literal is gone, so re-binding is unsound).
    merged_bounds: bool = False


_RANGE_OPS = frozenset({"<", "<=", ">", ">="})


def _range_bounds(
    expr: Expression,
) -> tuple[ColumnRef, list[tuple[str, Literal]]] | None:
    """Match a range conjunct with literal bounds.

    Returns ``(column, [(op, literal), ...])`` with ops normalized to the
    column-on-the-left orientation; BETWEEN yields both bounds.
    """
    if isinstance(expr, BinaryOp) and expr.op in _RANGE_OPS:
        if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
            return expr.left, [(expr.op, expr.right)]
        if isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
            return expr.right, [(_FLIPPED_OPS[expr.op], expr.left)]
        return None
    if (
        isinstance(expr, Between)
        and not expr.negated
        and isinstance(expr.expr, ColumnRef)
        and isinstance(expr.low, Literal)
        and isinstance(expr.high, Literal)
    ):
        return expr.expr, [(">=", expr.low), ("<=", expr.high)]
    return None


def _tighter_bound(
    current: tuple[Literal, bool], candidate: tuple[Literal, bool], lower: bool
) -> tuple[Literal, bool]:
    """The tighter of two merged range bounds (exclusive wins a tie)."""
    ordering = compare_values(current[0].value, candidate[0].value)
    if ordering is None:
        return current
    if ordering == 0:
        # Same constant: the exclusive bound is strictly tighter.
        return current if not current[1] else candidate
    if lower:
        return current if ordering > 0 else candidate
    return current if ordering < 0 else candidate


_FLIPPED_OPS = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "<>": "<>"}


def _simple_comparison(expr: Expression) -> tuple[ColumnRef, str, object] | None:
    """Match ``column op literal`` (either orientation) for selectivity lookup."""
    if isinstance(expr, BinaryOp) and expr.op in _FLIPPED_OPS:
        if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
            return expr.left, expr.op, expr.right.value
        if isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
            return expr.right, _FLIPPED_OPS[expr.op], expr.left.value
    if isinstance(expr, InList) and isinstance(expr.expr, ColumnRef) and not expr.negated:
        values = [v.value for v in expr.values if isinstance(v, Literal)]
        if len(values) == len(expr.values):
            return expr.expr, "IN", values
    return None
