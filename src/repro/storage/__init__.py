"""In-memory relational storage engine.

This package is the "standard DBMS" of the paper's Figure 4: the CQMS server
sits on top of it, forwards users' SQL to it, and also uses it to store the
Query Storage feature relations.  It provides:

* :mod:`repro.storage.types` — SQL value types and coercion,
* :mod:`repro.storage.schema` — column and table schemas,
* :mod:`repro.storage.catalog` — the system catalog with a schema-change log,
* :mod:`repro.storage.table` — heap tables with secondary indexes,
* :mod:`repro.storage.expression` — expression evaluation,
* :mod:`repro.storage.statistics` — histograms, samples, selectivity estimates,
* :mod:`repro.storage.planner` — the cost-based SELECT planner (access paths,
  join ordering, EXPLAIN),
* :mod:`repro.storage.plan_cache` — the template plan cache with
  version/drift invalidation,
* :mod:`repro.storage.exec_settings` — batch-size / parallel-scan knobs,
* :mod:`repro.storage.operators` — batched Volcano-style physical operators
  (compiled predicate fast paths, partitioned parallel scans, hash/sorted
  group aggregation),
* :mod:`repro.storage.aggregates` — incremental aggregate accumulators
  (update/merge/finish) behind the vectorized aggregation stage,
* :mod:`repro.storage.executor` — the SQL executor (projection, aggregation,
  ordering over the streamed operator pipeline),
* :mod:`repro.storage.wal` — the append-only checksummed write-ahead log,
* :mod:`repro.storage.snapshot` — atomic-rename checkpoint snapshots,
* :mod:`repro.storage.recovery` — crash recovery (snapshot + WAL-tail replay),
* :mod:`repro.storage.database` — the user-facing :class:`Database` facade.
"""

from repro.storage.types import DataType
from repro.storage.exec_settings import ExecutionSettings
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.catalog import Catalog, SchemaChange
from repro.storage.table import Table
from repro.storage.database import Database, QueryResult, ExecutionStats
from repro.storage.plan_cache import PlanCache, PlanCacheStats
from repro.storage.planner import PlanExplanation, Planner, SelectPlan
from repro.storage.recovery import RecoveryReport
from repro.storage.statistics import Histogram, ReservoirSample, TableStatistics
from repro.storage.wal import WalStats, WalWriter

__all__ = [
    "DataType",
    "ExecutionSettings",
    "ColumnSchema",
    "TableSchema",
    "Catalog",
    "SchemaChange",
    "Table",
    "Database",
    "QueryResult",
    "ExecutionStats",
    "PlanCache",
    "PlanCacheStats",
    "PlanExplanation",
    "Planner",
    "SelectPlan",
    "Histogram",
    "ReservoirSample",
    "TableStatistics",
    "RecoveryReport",
    "WalStats",
    "WalWriter",
]
