"""Template plan cache with version-based invalidation.

The CQMS meta-query workload is highly templated: browsing, recommendation,
and maintenance issue the same Figure 1 statement shapes thousands of times
with different constants.  This module lets :class:`~repro.storage.database.Database`
plan each *template* once:

* **Keying** — an incoming statement is parameterized
  (:func:`~repro.sql.canonicalize.parameterize_statement` swaps every literal
  for a value-carrying :class:`~repro.sql.canonicalize.ParamLiteral` that
  formats as ``'?'``) and then canonicalized; the rendered canonical text is
  the constant-stripped template key.  The key also carries the constants'
  type signature (so type-dependent access-path guards stay valid across
  instances) and the surface template text (case, alias, and FROM order affect
  output columns, so plans are only shared between textually identical
  templates).
* **Re-binding** — the cached plan's operator tree and statement share the
  template's ``ParamLiteral`` nodes, and canonicalization enumerates parameter
  sites in a template-deterministic order, so executing a new instance is one
  positional in-place assignment of the new constants — no re-planning, no
  tree copy.  The engine is single-threaded and plans are never executed
  concurrently, which is what makes the in-place swap safe.
* **Invalidation** — each cached plan snapshots, per touched table, the
  table's identity, ``schema_version``, ``version``, row count, and (when
  available) its statistics.  DDL and index changes require an exact
  ``schema_version`` match; plain DML churn invalidates only when it drifts
  past a configurable budget (relative row-count change, tightened by
  :meth:`~repro.storage.statistics.TableStatistics.drift` when histogram
  snapshots exist on both sides) — the paper's Section 4.4 notion of
  "significant changes in data distribution".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.sql.ast_nodes import (
    DeleteStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
    iter_subqueries,
    select_statement_tables,
)
from repro.sql.canonicalize import (
    ParamLiteral,
    canonical_statement,
    collect_parameters,
    parameterize_statement,
)
from repro.sql.formatter import format_statement

#: Default number of cached plans kept by a Database.
DEFAULT_PLAN_CACHE_SIZE = 128

#: Default staleness budget: relative row-count / histogram drift beyond which
#: a cached plan is discarded (matches CQMSConfig.statistics_drift_threshold).
DEFAULT_MAX_DRIFT = 0.25


@dataclass
class PlanCacheStats:
    """Counters describing the plan cache's behaviour."""

    hits: int = 0
    misses: int = 0
    invalidated_ddl: int = 0
    invalidated_drift: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0
    #: Statement-cache counters: byte-identical raw-SQL resubmissions that
    #: skipped the tokenizer/parser entirely (hits) versus cacheable
    #: statements that had to be parsed and prepared (misses).
    statement_hits: int = 0
    statement_misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def statement_lookups(self) -> int:
        return self.statement_hits + self.statement_misses

    @property
    def statement_hit_rate(self) -> float:
        """Fraction of cacheable raw-SQL submissions that skipped the parser."""
        return (
            self.statement_hits / self.statement_lookups
            if self.statement_lookups
            else 0.0
        )


@dataclass
class PreparedStatement:
    """A statement readied for cache lookup.

    ``statement`` is the parameterized surface form (execution-equivalent to
    the original: the parameters carry the original constants); ``values``
    are those constants in canonical template order; ``key`` identifies the
    template: canonical constant-stripped text, constant type signature, and
    surface template text.
    """

    statement: Statement
    key: tuple[str, tuple[str, ...], str]
    values: list
    params: list[ParamLiteral]
    table_names: tuple[str, ...]

    @property
    def canonical_template(self) -> str:
        return self.key[0]


@dataclass
class _TemplateKey:
    """Memoized canonicalization of one surface template.

    Canonicalizing every incoming statement would cost as much as planning a
    small one, so the cache canonicalizes each *surface template text* once:
    ``canonical`` is its constant-stripped canonical text and ``order`` maps
    canonical parameter positions to surface (parse-order) positions — enough
    to put any later instance's constants into canonical order without
    re-canonicalizing.
    """

    canonical: str
    order: list[int]
    table_names: tuple[str, ...]


@dataclass
class _TableSnapshot:
    """A touched table's state at plan time."""

    name: str
    table: object
    schema_version: int
    version: int
    row_count: int
    statistics: object | None


@dataclass
class CachedPlan:
    """One cached template plan plus everything needed to validate/re-bind it."""

    plan: object                      # SelectPlan | DmlPlan
    statement: Statement              # parameterized template statement
    params: list[ParamLiteral]        # canonical-order parameter nodes
    snapshots: list[_TableSnapshot] = field(default_factory=list)
    hits: int = 0

    def bind(self, values: list) -> None:
        """Point the template's parameter nodes at a new instance's constants.

        The nodes are shared by the plan's operator tree and statement, so
        this one pass re-binds the whole plan.  ``Literal`` is frozen, hence
        the ``object.__setattr__``.

        Aggregate plans re-bind the same way: the plan's aggregate stage keys
        its spec slots by the template statement's node identities, its
        memoized compiled getters read only row-dict keys (parameter values
        are read per call), and accumulators are created fresh per execution —
        nothing caches a bound constant.
        """
        for param, value in zip(self.params, values):
            object.__setattr__(param, "value", value)


class PlanCache:
    """An LRU cache of template plans with version/drift invalidation.

    ``resolve_table`` maps a lower-cased table name to the owning database's
    current :class:`~repro.storage.table.Table` (or None), used to detect
    drops and re-creates by object identity.
    """

    def __init__(
        self,
        resolve_table,
        capacity: int = DEFAULT_PLAN_CACHE_SIZE,
        max_drift: float = DEFAULT_MAX_DRIFT,
    ):
        self._resolve = resolve_table
        self.capacity = capacity
        self.max_drift = max_drift
        self._entries: OrderedDict[tuple, CachedPlan] = OrderedDict()
        self._templates: OrderedDict[str, _TemplateKey] = OrderedDict()
        self._statements: OrderedDict[str, PreparedStatement] = OrderedDict()
        self._stats = PlanCacheStats(capacity=capacity)

    def __len__(self) -> int:
        return len(self._entries)

    # -- statement cache (raw text → prepared statement) --------------------------

    def lookup_statement(self, text: str) -> PreparedStatement | None:
        """The memoized parse+parameterize result for byte-identical SQL text.

        On a hit, the prepared statement's parameter nodes are re-bound to the
        text's own constants before returning: the nodes are shared with the
        plan-cache template, so an execution of a *different* instance of the
        same template may have left other values in them.
        """
        prepared = self._statements.get(text)
        if prepared is None:
            return None
        self._statements.move_to_end(text)
        for param, value in zip(prepared.params, prepared.values):
            object.__setattr__(param, "value", value)
        self._stats.statement_hits += 1
        return prepared

    def store_statement(self, text: str, prepared: PreparedStatement) -> None:
        """Remember a freshly prepared statement under its raw SQL text.

        Only plan-cacheable statement kinds are remembered (DDL and INSERT
        never reach :meth:`prepare`); counts one statement-cache miss, so the
        hit rate reflects cacheable traffic only.  The memo needs no
        data-dependent invalidation — it maps text to an AST, and planning
        re-resolves tables against the live catalog every time.
        """
        if not isinstance(
            prepared.statement, (SelectStatement, UpdateStatement, DeleteStatement)
        ):
            return
        self._stats.statement_misses += 1
        self._statements[text] = prepared
        while len(self._statements) > max(4 * self.capacity, 64):
            self._statements.popitem(last=False)

    # -- keying ------------------------------------------------------------------

    def prepare(self, statement: Statement) -> PreparedStatement:
        """Parameterize and key a statement for lookup/store."""
        parameterized, surface_params = parameterize_statement(statement)
        surface = format_statement(parameterized)
        template = self._templates.get(surface)
        if template is None:
            canonical = canonical_statement(parameterized)
            position = {id(param): i for i, param in enumerate(surface_params)}
            template = _TemplateKey(
                canonical=format_statement(canonical),
                order=[position[id(param)] for param in collect_parameters(canonical)],
                table_names=_statement_table_names(parameterized),
            )
            self._templates[surface] = template
            while len(self._templates) > max(4 * self.capacity, 64):
                self._templates.popitem(last=False)
        else:
            self._templates.move_to_end(surface)
        ordered = [surface_params[i] for i in template.order]
        values = [param.value for param in ordered]
        key = (
            template.canonical,
            tuple(type(value).__name__ for value in values),
            surface,
        )
        return PreparedStatement(
            statement=parameterized,
            key=key,
            values=values,
            params=ordered,
            table_names=template.table_names,
        )

    # -- lookup / store ------------------------------------------------------------

    def lookup(self, prepared: PreparedStatement, count: bool = True) -> CachedPlan | None:
        """Return a fresh, re-bound cached plan for the template, or None.

        Stale entries (DDL mismatch, dropped/re-created table, drift past the
        budget) are evicted so a stale plan can never be executed.  With
        ``count=False`` the lookup leaves the hit/miss counters untouched
        (used by EXPLAIN so inspection does not skew the hit rate).
        """
        entry = self._entries.get(prepared.key)
        if entry is not None:
            reason = self._staleness(entry)
            if reason is not None:
                del self._entries[prepared.key]
                if reason == "ddl":
                    self._stats.invalidated_ddl += 1
                else:
                    self._stats.invalidated_drift += 1
                entry = None
            elif len(entry.params) != len(prepared.values):
                # Defensive: a key collision between different templates.
                del self._entries[prepared.key]
                entry = None
        if entry is None:
            if count:
                self._stats.misses += 1
            return None
        self._entries.move_to_end(prepared.key)
        entry.bind(prepared.values)
        if count:
            self._stats.hits += 1
            entry.hits += 1
        return entry

    def store(self, prepared: PreparedStatement, plan: object) -> CachedPlan | None:
        """Cache a freshly planned template; returns the entry (or None).

        The plan must have been produced from ``prepared.statement`` so the
        parameter nodes are shared between the plan and the cache entry.
        """
        snapshots = []
        for name in prepared.table_names:
            table = self._resolve(name)
            if table is None:
                return None  # planning raced a drop; do not cache
            snapshots.append(
                _TableSnapshot(
                    name=name,
                    table=table,
                    schema_version=table.schema_version,
                    version=table.version,
                    row_count=len(table),
                    statistics=table.cached_statistics,
                )
            )
        entry = CachedPlan(
            plan=plan,
            statement=prepared.statement,
            params=prepared.params,
            snapshots=snapshots,
        )
        self._entries[prepared.key] = entry
        self._entries.move_to_end(prepared.key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._stats.evictions += 1
        return entry

    # -- invalidation ----------------------------------------------------------------

    def _staleness(self, entry: CachedPlan) -> str | None:
        """Why the entry is stale: ``"ddl"``, ``"drift"``, or None (fresh)."""
        for snapshot in entry.snapshots:
            current = self._resolve(snapshot.name)
            if current is not snapshot.table:
                return "ddl"  # dropped, or dropped and re-created
            if current.schema_version != snapshot.schema_version:
                return "ddl"
            if current.version == snapshot.version:
                continue
            row_count = len(current)
            population = max(row_count, snapshot.row_count, 1)
            drift = abs(row_count - snapshot.row_count) / population
            # Mutation churn relative to table size: catches update-heavy
            # workloads that rewrite values while the row count stays flat
            # (statistics are usually cold there — every mutation clears the
            # cached snapshot — so histogram distance alone would miss it).
            drift = max(drift, (current.version - snapshot.version) / population)
            current_stats = current.cached_statistics
            if snapshot.statistics is not None and current_stats is not None:
                drift = max(drift, snapshot.statistics.drift(current_stats))
            if drift > self.max_drift:
                return "drift"
        return None

    # -- bookkeeping ----------------------------------------------------------------

    def clear(self) -> None:
        self._entries.clear()
        self._templates.clear()
        self._statements.clear()

    def stats(self) -> PlanCacheStats:
        self._stats.size = len(self._entries)
        self._stats.capacity = self.capacity
        return self._stats


def _statement_table_names(statement: Statement) -> tuple[str, ...]:
    """Lower-cased names of every base table a statement touches.

    Expression-level subqueries are included too: they are planned fresh at
    execution time, so invalidating on their tables is merely conservative.
    """
    names: set[str] = set()
    if isinstance(statement, SelectStatement):
        names.update(ref.name.lower() for ref in select_statement_tables(statement))
    elif isinstance(statement, (UpdateStatement, DeleteStatement)):
        names.add(statement.table.lower())
        expressions = []
        if statement.where is not None:
            expressions.append(statement.where)
        if isinstance(statement, UpdateStatement):
            expressions.extend(value for _, value in statement.assignments)
        for expr in expressions:
            for subquery in iter_subqueries(expr):
                names.update(
                    ref.name.lower() for ref in select_statement_tables(subquery)
                )
    return tuple(sorted(names))
