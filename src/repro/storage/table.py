"""Paged heap tables with secondary indexes and cached statistics."""

from __future__ import annotations

import math

from repro.errors import IntegrityError, SchemaError
from repro.storage.buffer_pool import PageStore
from repro.storage.indexes import INDEX_KINDS, HashIndex, SortedIndex
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.statistics import TableStatistics, partition_spans

#: Row slots per heap page.  A row id maps to ``(page ordinal, slot)`` as
#: ``divmod(row_id, HEAP_PAGE_SLOTS)`` — row ids are monotonic and never
#: reused, so the mapping is stable for the lifetime of the table.
HEAP_PAGE_SLOTS = 128


class _HeapPageCodec:
    """(De)serialize one heap page: a slot → row dict, ascending slot order."""

    @staticmethod
    def encode(page: dict) -> bytes:
        import json

        return json.dumps(
            [[slot, page[slot]] for slot in sorted(page)], separators=(",", ":")
        ).encode("utf-8")

    @staticmethod
    def decode(payload: bytes) -> dict:
        import json

        return {int(slot): row for slot, row in json.loads(payload.decode("utf-8"))}


HEAP_PAGE_CODEC = _HeapPageCodec()


def _install_slot(page: dict, slot: int, row: dict) -> None:
    """Place ``row`` at ``slot`` keeping the page's ascending slot order.

    Scans iterate pages in insertion order; normal inserts always append the
    highest slot so far, so the order is maintained for free.  Restore paths
    (WAL replay, failed-delete rollback) can re-add a low slot after higher
    ones — only then is the dict rebuilt sorted.
    """
    out_of_order = slot not in page and bool(page) and slot < next(reversed(page))
    page[slot] = row
    if out_of_order:
        ordered = sorted(page.items())
        page.clear()
        page.update(ordered)


class Table:
    """A heap table: slotted pages behind a buffer pool, plus its indexes.

    Rows are dicts keyed by the schema's column names (original case),
    stored ``HEAP_PAGE_SLOTS`` to a page; the page objects live in a
    :class:`~repro.storage.buffer_pool.PageStore` (shared database-wide, so
    one ``buffer_pool_pages`` budget bounds heap *and* index residency).
    Row ids are monotonically increasing and never reused, which lets
    indexes reference rows stably across deletes and pins each row to one
    ``(page, slot)`` forever.  Each column may carry one index per kind (a
    hash index for equality probes and a B+-tree-backed sorted index for
    range scans and ordered access).

    When the owning database is durable it sets ``wal_emit`` to the WAL
    appender: every successful mutation — insert/update/delete plus index
    builds — then emits one logical log record *after* it has been applied,
    so crash recovery replays exactly the committed operations.
    """

    def __init__(
        self,
        schema: TableSchema,
        store: PageStore | None = None,
        page_slots: int = HEAP_PAGE_SLOTS,
    ):
        self._schema = schema
        self._store = store if store is not None else PageStore()
        self._page_slots = max(1, int(page_slots))
        self._page_ids: dict[int, int] = {}  # page ordinal -> buffer-pool page id
        self._page_live: dict[int, int] = {}  # page ordinal -> live row count
        self._row_count = 0
        self._next_row_id = 0
        #: Durability hook: ``callable(record_dict)`` appending to the WAL,
        #: or None for an in-memory table (and during recovery replay).
        self.wal_emit = None
        # column (lower-cased) → kind ("hash"/"sorted") → index
        self._indexes: dict[str, dict[str, HashIndex | SortedIndex]] = {}
        self._stats_cache: TableStatistics | None = None
        # Monotonic change counters consumed by the plan cache: ``version``
        # moves on every mutation (DML, DDL, index builds, statistics
        # refreshes); ``schema_version`` moves only on DDL and index changes,
        # where cached plans require an exact match instead of a drift check.
        self.version = 0
        self.schema_version = 0
        if schema.primary_key is not None:
            self.create_index(
                f"{schema.name.lower()}_pk", schema.primary_key.name, unique=True
            )
        for column in schema.columns:
            if column.unique and not column.primary_key:
                self.create_index(
                    f"{schema.name.lower()}_{column.name.lower()}_unique",
                    column.name,
                    unique=True,
                )

    # -- basic accessors -----------------------------------------------------

    @property
    def schema(self) -> TableSchema:
        return self._schema

    @property
    def name(self) -> str:
        return self._schema.name

    def __len__(self) -> int:
        return self._row_count

    @property
    def page_slots(self) -> int:
        return self._page_slots

    @property
    def page_count(self) -> int:
        """Heap pages the table occupies (the planner's I/O cost input)."""
        return len(self._page_ids)

    @property
    def store(self) -> PageStore:
        return self._store

    def rows(self) -> list[dict[str, object]]:
        """A snapshot list of all rows (copies are not made; do not mutate)."""
        return [row for _, row in self.scan()]

    def scan(self):
        """Iterate over ``(row_id, row)`` pairs in row-id order.

        Pages are read through the buffer pool without pinning: eviction
        only drops the store's reference, so a page dict being iterated
        stays valid for the iterator holding it, and read-only iteration is
        safe under the engine's statement-at-a-time mutation model.
        """
        for ordinal in sorted(self._page_ids):
            page = self._store.read(self._page_ids[ordinal], HEAP_PAGE_CODEC)
            base = ordinal * self._page_slots
            for slot, row in page.items():
                yield base + slot, row

    def scan_row_lists(self):
        """Per-page lists of stored row dicts, in :meth:`scan` order.

        The columnar scan's bulk feed: one C-speed ``list(page.values())``
        per page instead of a Python-level generator resumption per row,
        which is where a row-granular feed spends most of its time.  Rows
        are the same dict objects :meth:`scan` yields; callers must not
        mutate them or the returned lists they arrive in.
        """
        for ordinal in sorted(self._page_ids):
            page = self._store.read(self._page_ids[ordinal], HEAP_PAGE_CODEC)
            if page:
                yield list(page.values())

    def scan_span(self, start: int, stop: int):
        """Iterate the ``(row_id, row)`` pairs of one contiguous heap span.

        ``start``/``stop`` are *positions* in :meth:`scan` order, so spans in
        :func:`~repro.storage.statistics.partition_spans` order concatenate
        back to exactly :meth:`scan`.  Per-page live counts skip whole pages
        before the span start without touching their contents, so a worker
        of a :class:`~repro.storage.operators.ParallelSeqScan` faults in only
        the pages its span actually covers.
        """
        if start >= stop:
            return
        position = 0
        for ordinal in sorted(self._page_ids):
            live = self._page_live[ordinal]
            if position + live <= start:
                position += live
                continue
            if position >= stop:
                return
            page = self._store.read(self._page_ids[ordinal], HEAP_PAGE_CODEC)
            base = ordinal * self._page_slots
            for slot, row in page.items():
                if position >= stop:
                    return
                if position >= start:
                    yield base + slot, row
                position += 1

    def scan_partitions(self, partitions: int) -> list[list[tuple[int, dict]]]:
        """Split the heap into up to ``partitions`` contiguous slices.

        Each slice materializes one :meth:`scan_span`; concatenating the
        slices in order reproduces :meth:`scan` exactly.  Boundaries come
        from :func:`~repro.storage.statistics.partition_spans`, so empty
        tables yield no partitions and small tables yield fewer than
        requested.
        """
        return [
            list(self.scan_span(start, stop))
            for start, stop in partition_spans(self._row_count, partitions)
        ]

    def partition_spans(self, partitions: int) -> list[tuple[int, int]]:
        """Positional spans aligned to heap-page boundaries.

        Parallel scans fan out per *page run*: every span except the bounds
        of the heap starts and ends on a page edge, so no two workers ever
        fault the same page and each page is decoded at most once per scan.
        Spans are contiguous, cover every row exactly once, and concatenate
        (via :meth:`scan_span`) back to :meth:`scan` order.
        """
        total = self._row_count
        if total <= 0 or partitions <= 0:
            return []
        target = math.ceil(total / partitions)
        spans: list[tuple[int, int]] = []
        start = 0
        position = 0
        for ordinal in sorted(self._page_ids):
            position += self._page_live[ordinal]
            if position - start >= target and len(spans) < partitions - 1:
                spans.append((start, position))
                start = position
        if start < total:
            spans.append((start, total))
        return spans

    def _bump(self, schema: bool = False) -> None:
        """Advance the change counters after a mutation."""
        self.version += 1
        if schema:
            self.schema_version += 1

    def get(self, row_id: int) -> dict[str, object] | None:
        ordinal, slot = divmod(row_id, self._page_slots)
        page_id = self._page_ids.get(ordinal)
        if page_id is None:
            return None
        return self._store.read(page_id, HEAP_PAGE_CODEC).get(slot)

    @property
    def next_row_id(self) -> int:
        """The row id the next insert will take (snapshotted for recovery)."""
        return self._next_row_id

    # -- slotted-page plumbing -------------------------------------------------

    def _store_slot(self, row_id: int, row: dict) -> None:
        """Write ``row`` into its page (pin → mutate → mark dirty → unpin)."""
        ordinal, slot = divmod(row_id, self._page_slots)
        page_id = self._page_ids.get(ordinal)
        if page_id is None:
            page_id = self._store.allocate({}, HEAP_PAGE_CODEC)
            self._page_ids[ordinal] = page_id
            self._page_live[ordinal] = 0
        page = self._store.fetch(page_id, HEAP_PAGE_CODEC)
        try:
            fresh = slot not in page
            _install_slot(page, slot, row)
            self._store.mark_dirty(page_id)
        finally:
            self._store.unpin(page_id)
        if fresh:
            self._page_live[ordinal] += 1
            self._row_count += 1

    def _discard_slot(self, row_id: int) -> dict | None:
        """Remove and return the row at ``row_id``; frees emptied pages."""
        ordinal, slot = divmod(row_id, self._page_slots)
        page_id = self._page_ids.get(ordinal)
        if page_id is None:
            return None
        page = self._store.fetch(page_id, HEAP_PAGE_CODEC)
        try:
            row = page.pop(slot, None)
            if row is not None:
                self._store.mark_dirty(page_id)
        finally:
            self._store.unpin(page_id)
        if row is None:
            return None
        self._page_live[ordinal] -= 1
        self._row_count -= 1
        if self._page_live[ordinal] <= 0:
            del self._page_ids[ordinal]
            del self._page_live[ordinal]
            self._store.free(page_id)
        return row

    def heap_page_ids(self) -> list[int]:
        """The buffer-pool page ids of every heap page (checkpoint set)."""
        return [self._page_ids[ordinal] for ordinal in sorted(self._page_ids)]

    def page_directory(self) -> list[list[int]]:
        """``[ordinal, head_frame, live]`` rows for the checkpoint metadata.

        Valid only after the owning database flushed the heap pages — every
        page then has an on-disk chain whose head frame recovery can adopt.
        """
        return [
            [ordinal, self._store.chain_head(self._page_ids[ordinal]),
             self._page_live[ordinal]]
            for ordinal in sorted(self._page_ids)
        ]

    def restore_page(self, ordinal: int, page_id: int, live: int) -> None:
        """Recovery: attach an adopted on-disk page at ``ordinal``."""
        self._page_ids[ordinal] = page_id
        self._page_live[ordinal] = live
        self._row_count += live

    def rebuild_indexes(self) -> None:
        """Recovery: repopulate every index from one heap scan.

        Index pages are never checkpointed (they are derived data); after
        the heap pages are attached this rebuilds the exact access paths the
        planner expects.
        """
        for index in self._iter_indexes():
            index.clear()
        for row_id, row in self.scan():
            for index in self._iter_indexes():
                index.insert(row[index.column], row_id)
        self._stats_cache = None

    def drop_storage(self) -> None:
        """Release every buffer-pool page this table owns (DROP TABLE)."""
        for index in self._iter_indexes():
            index.drop()
        for page_id in self._page_ids.values():
            self._store.free(page_id)
        self._page_ids.clear()
        self._page_live.clear()
        self._row_count = 0

    # -- indexes --------------------------------------------------------------

    def create_index(
        self, name: str, column: str, unique: bool = False, kind: str = "hash"
    ) -> HashIndex | SortedIndex:
        try:
            index_class = INDEX_KINDS[kind.lower()]
        except KeyError:
            raise SchemaError(
                f"unknown index kind {kind!r}; expected one of {sorted(INDEX_KINDS)}"
            ) from None
        if not self._schema.has_column(column):
            raise SchemaError(f"table {self.name!r} has no column {column!r}")
        canonical = self._schema.column(column).name
        kinds = self._indexes.setdefault(canonical.lower(), {})
        existing = kinds.get(index_class.kind)
        if existing is not None:
            if existing.unique != unique:
                raise SchemaError(
                    f"index {existing.name!r} on {self.name}.{canonical} already "
                    f"exists with unique={existing.unique}; cannot create "
                    f"{name!r} with unique={unique}"
                )
            return existing
        if index_class.kind == "sorted":
            # Sorted indexes page their B+ tree nodes through the table's
            # store, so index residency shares the heap's pool budget.
            index = index_class(name=name, column=canonical, unique=unique,
                                store=self._store)
        else:
            index = index_class(name=name, column=canonical, unique=unique)
        for row_id, row in self.scan():
            index.insert(row[canonical], row_id)
        kinds[index_class.kind] = index
        self._bump(schema=True)
        if self.wal_emit is not None:
            try:
                self.wal_emit(
                    {
                        "op": "create_index",
                        "tbl": self.name,
                        "name": name,
                        "column": canonical,
                        "unique": unique,
                        "kind": index_class.kind,
                    }
                )
            except BaseException:
                kinds.pop(index_class.kind).drop()  # un-log-able: drop the build
                raise
        return index

    def index_definitions(self) -> list:
        """Every index in deterministic (column, kind) order — snapshotted so
        recovery rebuilds the exact same access paths."""
        definitions = []
        for column in sorted(self._indexes):
            kinds = self._indexes[column]
            definitions.extend(kinds[kind] for kind in sorted(kinds))
        return definitions

    def index_for(self, column: str) -> HashIndex | SortedIndex | None:
        """The column's equality-capable index (hash preferred, else sorted)."""
        kinds = self._indexes.get(column.lower())
        if not kinds:
            return None
        return kinds.get("hash") or kinds.get("sorted")

    def sorted_index_for(self, column: str) -> SortedIndex | None:
        """The column's sorted index, when one exists."""
        kinds = self._indexes.get(column.lower())
        if not kinds:
            return None
        return kinds.get("sorted")

    def _iter_indexes(self):
        for kinds in self._indexes.values():
            yield from kinds.values()

    def lookup(self, column: str, value: object) -> list[dict[str, object]]:
        """Equality lookup, via index when available, else a scan."""
        index = self.index_for(column)
        canonical = self._schema.column(column).name
        if index is not None:
            return [self.get(row_id) for row_id in sorted(index.lookup(value))]
        return [row for _, row in self.scan() if row[canonical] == value]

    # -- mutation -------------------------------------------------------------

    def insert(self, row: dict[str, object]) -> int:
        """Insert a row, returning its row id."""
        coerced = self._schema.coerce_row(row)
        row_id = self._next_row_id
        # Validate unique indexes before touching state so failures are atomic.
        for index in self._iter_indexes():
            if index.unique and coerced[index.column] is not None:
                if index.lookup(coerced[index.column]):
                    raise IntegrityError(
                        f"duplicate value {coerced[index.column]!r} for unique column "
                        f"{index.column!r} of table {self.name!r}"
                    )
        self._store_slot(row_id, coerced)
        self._next_row_id += 1
        for index in self._iter_indexes():
            index.insert(coerced[index.column], row_id)
        self._stats_cache = None
        self.version += 1
        if self.wal_emit is not None:
            try:
                self.wal_emit(
                    {"op": "insert", "tbl": self.name, "rid": row_id, "row": coerced}
                )
            except BaseException:
                # The mutation could not be logged (full disk, closed WAL):
                # undo it so live state never diverges from what recovery
                # will rebuild.  The row id stays consumed — ids are never
                # reused anyway.
                self._discard_slot(row_id)
                for index in self._iter_indexes():
                    index.delete(coerced[index.column], row_id)
                raise
        return row_id

    def restore_row(self, row_id: int, row: dict[str, object]) -> None:
        """Recovery-path insert at a fixed row id (never WAL-logged).

        Used when loading a snapshot and when replaying logged inserts: the
        row takes exactly the id it had before the crash (indexes and session
        references point at row ids, so they must stay stable), and the
        next-id counter advances past it.
        """
        coerced = self._schema.coerce_row(row)
        self._store_slot(row_id, coerced)
        self._next_row_id = max(self._next_row_id, row_id + 1)
        for index in self._iter_indexes():
            index.insert(coerced[index.column], row_id)
        self._stats_cache = None
        self.version += 1

    def restore_counters(
        self, next_row_id: int, version: int, schema_version: int
    ) -> None:
        """Overwrite the change counters with snapshotted values (recovery)."""
        self._next_row_id = max(self._next_row_id, next_row_id)
        self.version = version
        self.schema_version = schema_version

    def insert_many(self, rows) -> list[int]:
        return [self.insert(row) for row in rows]

    def delete(self, row_id: int) -> None:
        row = self._discard_slot(row_id)
        if row is None:
            return
        for index in self._iter_indexes():
            index.delete(row[index.column], row_id)
        self._stats_cache = None
        self.version += 1
        if self.wal_emit is not None:
            try:
                self.wal_emit({"op": "delete", "tbl": self.name, "rid": row_id})
            except BaseException:
                self._store_slot(row_id, row)  # un-log-able: restore the row
                for index in self._iter_indexes():
                    index.insert(row[index.column], row_id)
                raise

    def delete_where(self, predicate) -> int:
        """Delete rows matching ``predicate(row)``; returns the number removed."""
        doomed = [row_id for row_id, row in self.scan() if predicate(row)]
        for row_id in doomed:
            self.delete(row_id)
        return len(doomed)

    def update(self, row_id: int, changes: dict[str, object]) -> None:
        row = self.get(row_id)
        if row is None:
            return
        updated = dict(row)
        updated.update({self._schema.column(k).name: v for k, v in changes.items()})
        coerced = self._schema.coerce_row(updated)
        # Re-point every affected index, rolling back the ones already touched
        # if a later unique index rejects the new value — a failed update must
        # leave every index exactly as it was.
        touched: list[tuple[object, object, object]] = []
        try:
            for index in self._iter_indexes():
                old_value = row[index.column]
                new_value = coerced[index.column]
                if old_value == new_value:
                    continue
                index.delete(old_value, row_id)
                if index.unique and new_value is not None and index.lookup(new_value):
                    index.insert(old_value, row_id)  # restore before failing
                    raise IntegrityError(
                        f"duplicate value {new_value!r} for unique column "
                        f"{index.column!r} of table {self.name!r}"
                    )
                index.insert(new_value, row_id)
                touched.append((index, old_value, new_value))
        except IntegrityError:
            for index, old_value, new_value in reversed(touched):
                index.delete(new_value, row_id)
                index.insert(old_value, row_id)
            raise
        self._store_slot(row_id, coerced)
        self._stats_cache = None
        self.version += 1
        if self.wal_emit is not None:
            changed = {
                self._schema.column(column).name: coerced[self._schema.column(column).name]
                for column in changes
            }
            try:
                self.wal_emit(
                    {"op": "update", "tbl": self.name, "rid": row_id, "set": changed}
                )
            except BaseException:
                # Un-log-able update: restore the old row and re-point the
                # indexes touched above, so memory matches what recovery
                # will rebuild.
                self._store_slot(row_id, row)
                for index, old_value, new_value in reversed(touched):
                    index.delete(new_value, row_id)
                    index.insert(old_value, row_id)
                raise

    # -- schema evolution ------------------------------------------------------

    def _rewrite_pages(self, mutate_row) -> None:
        """Apply ``mutate_row(row)`` to every row, page by page, under pins."""
        for ordinal in sorted(self._page_ids):
            page_id = self._page_ids[ordinal]
            page = self._store.fetch(page_id, HEAP_PAGE_CODEC)
            try:
                for row in page.values():
                    mutate_row(row)
                self._store.mark_dirty(page_id)
            finally:
                self._store.unpin(page_id)

    def add_column(self, column: ColumnSchema, default: object = None) -> None:
        if column.not_null and default is None and self._row_count:
            raise SchemaError(
                f"cannot add NOT NULL column {column.name!r} without a default"
            )
        self._schema = self._schema.with_column_added(column)
        fill = column.coerce(default) if default is not None else None

        def mutate(row, name=column.name, value=fill):
            row[name] = value

        self._rewrite_pages(mutate)
        self._stats_cache = None
        self._bump(schema=True)

    def drop_column(self, name: str) -> None:
        canonical = self._schema.column(name).name
        kinds = self._indexes.pop(canonical.lower(), None)
        if kinds is not None:
            for index in kinds.values():
                index.drop()
        self._schema = self._schema.with_column_dropped(name)

        def mutate(row, name=canonical):
            row.pop(name, None)

        self._rewrite_pages(mutate)
        self._stats_cache = None
        self._bump(schema=True)

    def rename_column(self, old: str, new: str) -> None:
        canonical = self._schema.column(old).name
        self._schema = self._schema.with_column_renamed(old, new)
        new_canonical = self._schema.column(new).name

        def mutate(row, old_name=canonical, new_name=new_canonical):
            row[new_name] = row.pop(old_name)

        self._rewrite_pages(mutate)
        kinds = self._indexes.pop(canonical.lower(), None)
        if kinds is not None:
            for index in kinds.values():
                index.column = new_canonical
            self._indexes[new_canonical.lower()] = kinds
        self._stats_cache = None
        self._bump(schema=True)

    def rename(self, new_name: str) -> None:
        self._schema = self._schema.renamed(new_name)
        self._bump(schema=True)

    # -- statistics -------------------------------------------------------------

    def statistics(self, refresh: bool = False) -> TableStatistics:
        """Table statistics; cached until the next mutation."""
        if self._stats_cache is None or refresh:
            self._stats_cache = TableStatistics.compute(self.name, self.rows())
            if refresh:
                # An explicit refresh changes the planner's costing inputs;
                # let cached plans re-validate against the new snapshot.
                self.version += 1
        return self._stats_cache

    @property
    def cached_statistics(self) -> TableStatistics | None:
        """The statistics snapshot if still fresh, without recomputing.

        The planner consults this so planning never pays for a full statistics
        build on a hot path; stale or absent statistics fall back to cheap
        row-count and index-cardinality estimates.
        """
        return self._stats_cache
