"""Expression evaluation against row scopes.

The evaluator implements a pragmatic subset of SQL semantics:

* three-valued logic for comparisons involving NULL (comparisons with NULL
  are *unknown*; ``WHERE`` treats unknown as false),
* ``LIKE`` with ``%`` and ``_`` wildcards,
* arithmetic with NULL propagation,
* correlated subqueries through chained scopes.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.errors import ExecutionError
from repro.storage.types import compare_values
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    ExistsSubquery,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    Literal,
    ScalarSubquery,
    SelectStatement,
    Star,
    UnaryOp,
)

#: Type of the callback used to run nested subqueries.  It receives the
#: subquery and the enclosing scope (for correlated references) and returns a
#: list of result tuples.
SubqueryRunner = Callable[[SelectStatement, "Scope"], list[tuple]]


class Scope:
    """A row scope: bindings of table aliases to row dicts, with a parent chain.

    ``extras`` holds additional named values (select-list aliases usable in
    ORDER BY / HAVING).
    """

    def __init__(
        self,
        bindings: dict[str, dict[str, object]],
        parent: "Scope | None" = None,
        extras: dict[str, object] | None = None,
    ):
        self._bindings = {name.lower(): row for name, row in bindings.items()}
        self._parent = parent
        self._extras = {name.lower(): value for name, value in (extras or {}).items()}

    @property
    def bindings(self) -> dict[str, dict[str, object]]:
        return self._bindings

    def child(self, bindings: dict[str, dict[str, object]]) -> "Scope":
        return Scope(bindings, parent=self)

    def with_extras(self, extras: dict[str, object]) -> "Scope":
        merged = dict(self._extras)
        merged.update({name.lower(): value for name, value in extras.items()})
        scope = Scope({}, parent=self)
        scope._extras = merged
        return scope

    def resolve(self, column: ColumnRef) -> object:
        """Resolve a column reference to its value.

        Raises :class:`~repro.errors.ExecutionError` for unknown or ambiguous
        references.
        """
        name = column.name.lower()
        if column.table:
            binding = column.table.lower()
            row = self._bindings.get(binding)
            if row is not None:
                for key, value in row.items():
                    if key.lower() == name:
                        return value
                raise ExecutionError(
                    f"column {column.name!r} not found in {column.table!r}"
                )
            if self._parent is not None:
                return self._parent.resolve(column)
            raise ExecutionError(f"unknown table alias {column.table!r}")
        matches = []
        for row in self._bindings.values():
            for key, value in row.items():
                if key.lower() == name:
                    matches.append(value)
                    break
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise ExecutionError(f"ambiguous column reference {column.name!r}")
        if name in self._extras:
            return self._extras[name]
        if self._parent is not None:
            return self._parent.resolve(column)
        raise ExecutionError(f"unknown column {column.name!r}")

    def has_column(self, column: ColumnRef) -> bool:
        try:
            self.resolve(column)
            return True
        except ExecutionError:
            return False


def evaluate(
    expr: Expression, scope: Scope, run_subquery: SubqueryRunner | None = None
) -> object:
    """Evaluate ``expr`` in ``scope``; returns a Python value or None (NULL)."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return scope.resolve(expr)
    if isinstance(expr, Star):
        raise ExecutionError("'*' is only allowed in the select list or COUNT(*)")
    if isinstance(expr, BinaryOp):
        return _evaluate_binary(expr, scope, run_subquery)
    if isinstance(expr, UnaryOp):
        return _evaluate_unary(expr, scope, run_subquery)
    if isinstance(expr, FunctionCall):
        return _evaluate_function(expr, scope, run_subquery)
    if isinstance(expr, InList):
        return _evaluate_in_list(expr, scope, run_subquery)
    if isinstance(expr, InSubquery):
        return _evaluate_in_subquery(expr, scope, run_subquery)
    if isinstance(expr, ExistsSubquery):
        rows = _run_subquery(expr.subquery, scope, run_subquery)
        result = bool(rows)
        return (not result) if expr.negated else result
    if isinstance(expr, ScalarSubquery):
        rows = _run_subquery(expr.subquery, scope, run_subquery)
        if not rows:
            return None
        return rows[0][0]
    if isinstance(expr, Between):
        value = evaluate(expr.expr, scope, run_subquery)
        low = evaluate(expr.low, scope, run_subquery)
        high = evaluate(expr.high, scope, run_subquery)
        low_cmp = compare_values(value, low)
        high_cmp = compare_values(value, high)
        if low_cmp is None or high_cmp is None:
            return None
        inside = low_cmp >= 0 and high_cmp <= 0
        return (not inside) if expr.negated else inside
    if isinstance(expr, CaseExpression):
        for condition, value in expr.whens:
            if is_true(evaluate(condition, scope, run_subquery)):
                return evaluate(value, scope, run_subquery)
        if expr.default is not None:
            return evaluate(expr.default, scope, run_subquery)
        return None
    raise ExecutionError(f"unsupported expression type {type(expr).__name__}")


def is_true(value: object) -> bool:
    """SQL WHERE semantics: only a definite True passes (NULL/unknown fails)."""
    return value is True


# ---------------------------------------------------------------------------
# Operator implementations
# ---------------------------------------------------------------------------


def _evaluate_binary(expr: BinaryOp, scope: Scope, run_subquery) -> object:
    if expr.op == "AND":
        left = evaluate(expr.left, scope, run_subquery)
        if left is False:
            return False
        right = evaluate(expr.right, scope, run_subquery)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return bool(left) and bool(right)
    if expr.op == "OR":
        left = evaluate(expr.left, scope, run_subquery)
        if left is True:
            return True
        right = evaluate(expr.right, scope, run_subquery)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return bool(left) or bool(right)

    left = evaluate(expr.left, scope, run_subquery)
    right = evaluate(expr.right, scope, run_subquery)
    if expr.op in ("=", "<>", "<", "<=", ">", ">="):
        comparison = compare_values(left, right)
        if comparison is None:
            return None
        return {
            "=": comparison == 0,
            "<>": comparison != 0,
            "<": comparison < 0,
            "<=": comparison <= 0,
            ">": comparison > 0,
            ">=": comparison >= 0,
        }[expr.op]
    if expr.op == "LIKE":
        if left is None or right is None:
            return None
        return _like(str(left), str(right))
    if expr.op == "||":
        if left is None or right is None:
            return None
        return str(left) + str(right)
    if expr.op in ("+", "-", "*", "/", "%"):
        if left is None or right is None:
            return None
        if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
            raise ExecutionError(
                f"arithmetic {expr.op!r} requires numeric operands, got "
                f"{type(left).__name__} and {type(right).__name__}"
            )
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            if right == 0:
                return None
            result = left / right
            return result
        if right == 0:
            return None
        return left % right
    raise ExecutionError(f"unsupported binary operator {expr.op!r}")


def _evaluate_unary(expr: UnaryOp, scope: Scope, run_subquery) -> object:
    if expr.op == "NOT":
        value = evaluate(expr.operand, scope, run_subquery)
        if value is None:
            return None
        return not bool(value)
    if expr.op == "-":
        value = evaluate(expr.operand, scope, run_subquery)
        if value is None:
            return None
        if not isinstance(value, (int, float)):
            raise ExecutionError("unary minus requires a numeric operand")
        return -value
    if expr.op == "IS NULL":
        return evaluate(expr.operand, scope, run_subquery) is None
    if expr.op == "IS NOT NULL":
        return evaluate(expr.operand, scope, run_subquery) is not None
    raise ExecutionError(f"unsupported unary operator {expr.op!r}")


def _evaluate_function(expr: FunctionCall, scope: Scope, run_subquery) -> object:
    name = expr.name.upper()
    if name == "CAST":
        value = evaluate(expr.args[0], scope, run_subquery)
        target = expr.args[1].value if len(expr.args) > 1 else "TEXT"
        return _cast(value, str(target))
    if expr.is_aggregate:
        raise ExecutionError(
            f"aggregate {name} used outside of an aggregation context"
        )
    scalar_functions = {
        "LOWER": lambda v: None if v is None else str(v).lower(),
        "UPPER": lambda v: None if v is None else str(v).upper(),
        "LENGTH": lambda v: None if v is None else len(str(v)),
        "ABS": lambda v: None if v is None else abs(v),
        "ROUND": lambda v: None if v is None else round(v),
        "COALESCE": None,
    }
    if name == "COALESCE":
        for arg in expr.args:
            value = evaluate(arg, scope, run_subquery)
            if value is not None:
                return value
        return None
    if name == "ROUND" and len(expr.args) == 2:
        value = evaluate(expr.args[0], scope, run_subquery)
        digits = evaluate(expr.args[1], scope, run_subquery)
        if value is None or digits is None:
            return None
        return round(value, int(digits))
    handler = scalar_functions.get(name)
    if handler is None:
        raise ExecutionError(f"unknown function {name!r}")
    if len(expr.args) != 1:
        raise ExecutionError(f"function {name} expects exactly one argument")
    return handler(evaluate(expr.args[0], scope, run_subquery))


def _evaluate_in_list(expr: InList, scope: Scope, run_subquery) -> object:
    value = evaluate(expr.expr, scope, run_subquery)
    if value is None:
        return None
    found = False
    saw_null = False
    for candidate in expr.values:
        candidate_value = evaluate(candidate, scope, run_subquery)
        if candidate_value is None:
            saw_null = True
            continue
        if compare_values(value, candidate_value) == 0:
            found = True
            break
    if not found and saw_null:
        return None
    return (not found) if expr.negated else found


def _evaluate_in_subquery(expr: InSubquery, scope: Scope, run_subquery) -> object:
    value = evaluate(expr.expr, scope, run_subquery)
    if value is None:
        return None
    rows = _run_subquery(expr.subquery, scope, run_subquery)
    found = any(row and compare_values(value, row[0]) == 0 for row in rows)
    return (not found) if expr.negated else found


def _run_subquery(subquery: SelectStatement, scope: Scope, run_subquery) -> list[tuple]:
    if run_subquery is None:
        raise ExecutionError("subqueries are not supported in this context")
    return run_subquery(subquery, scope)


def like_regex(pattern: str) -> "re.Pattern[str]":
    """The compiled regex implementing ``LIKE pattern`` (``%``/``_`` wildcards).

    Shared with the batched operators' compiled-predicate fast path so both
    evaluation routes apply byte-identical LIKE semantics.
    """
    regex = ""
    for ch in pattern:
        if ch == "%":
            regex += ".*"
        elif ch == "_":
            regex += "."
        else:
            regex += re.escape(ch)
    return re.compile(regex, flags=re.IGNORECASE)


def _like(value: str, pattern: str) -> bool:
    return like_regex(pattern).fullmatch(value) is not None


def _cast(value: object, target: str) -> object:
    if value is None:
        return None
    target = target.upper()
    try:
        if target in ("INTEGER", "INT", "BIGINT"):
            return int(float(value)) if not isinstance(value, str) else int(float(value))
        if target in ("FLOAT", "REAL", "DOUBLE", "NUMERIC", "DECIMAL"):
            return float(value)
        if target in ("TEXT", "VARCHAR", "CHAR", "STRING"):
            return str(value)
        if target in ("BOOLEAN", "BOOL"):
            if isinstance(value, str):
                return value.lower() == "true"
            return bool(value)
    except (TypeError, ValueError) as exc:
        raise ExecutionError(f"cannot CAST {value!r} to {target}") from exc
    raise ExecutionError(f"unsupported CAST target {target!r}")
