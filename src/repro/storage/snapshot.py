"""Checkpoint metadata: the recovery starting point in one atomic file.

A checkpoint bounds recovery time: instead of replaying the write-ahead log
from the beginning of time, :mod:`repro.storage.recovery` loads the latest
checkpoint and replays only the log tail written after it.  Two formats
share the ``snapshot.json`` file and the same atomic-publish protocol:

* **v1 — full snapshot** (:func:`build_snapshot` / :func:`write_snapshot`):
  the whole database inline, heap rows included.  Cost grows with database
  size; still used by in-memory exports and loadable by recovery forever.
* **v2 — incremental checkpoint** (:func:`build_checkpoint` /
  :func:`write_checkpoint`): only *metadata* — catalog history, schemas,
  index definitions, version counters, and each table's **page directory**
  (heap page ordinal → head frame in ``pages.db`` → live row count).  The
  rows themselves stay in the page file: the checkpoint flushes just the
  dirty pages (shadow-paged to fresh frames) and fsyncs, so its cost tracks
  the working set since the last checkpoint, not the database size.

The publish protocol is the classic one either way:

1. flush the WAL (everything the checkpoint covers is on disk first),
2. v2 only: write dirty heap pages to fresh frames and ``fsync`` the page
   file — published frames are never overwritten in place, so the previous
   checkpoint stays intact underneath,
3. write the metadata to ``snapshot.json.tmp``, ``fsync``, then
   **atomically rename** over ``snapshot.json`` (readers only ever see the
   old or the new complete checkpoint, never a half-written one),
4. truncate the WAL (and, v2, release the frames only the old checkpoint
   referenced).

A crash between steps 3 and 4 leaves committed records in the log that the
checkpoint already covers; replay skips them by LSN.  A crash before step
3's rename leaves a stale ``.tmp`` file that recovery ignores — and, v2, a
page file whose fresh frames are garbage that recovery's free-list
reconciliation reclaims.

The file itself is a one-line header (format version, CRC32 and length of the
body) followed by a JSON body, so recovery can tell a valid checkpoint from a
damaged one without trusting its contents.
"""

from __future__ import annotations

import json
import os
import zlib

from repro.errors import DurabilityError
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.types import DataType
from repro.storage.wal import fsync_directory

#: File name of the snapshot inside a database's ``data_dir``.
SNAPSHOT_FILE_NAME = "snapshot.json"
#: Suffix of the in-progress file the atomic rename publishes.
SNAPSHOT_TMP_SUFFIX = ".tmp"

_HEADER_PREFIX = "REPRO-SNAPSHOT"
_FORMAT_VERSION = 1
#: Format of incremental (page-directory) checkpoints.
CHECKPOINT_FORMAT_VERSION = 2


# -- schema (de)serialization --------------------------------------------------
#
# Shared with the WAL's DDL records: a CREATE TABLE logs the same schema dict
# a snapshot stores, so both replay paths build identical TableSchema objects.


def column_to_dict(column: ColumnSchema) -> dict:
    """A JSON-safe rendering of a :class:`ColumnSchema` (snapshot tables,
    WAL CREATE TABLE and ALTER TABLE … ADD COLUMN records)."""
    return {
        "name": column.name,
        "type": column.data_type.value,
        "not_null": column.not_null,
        "primary_key": column.primary_key,
        "unique": column.unique,
    }


def column_from_dict(data: dict) -> ColumnSchema:
    """Rebuild a :class:`ColumnSchema` from :func:`column_to_dict` output."""
    return ColumnSchema(
        name=data["name"],
        data_type=DataType(data["type"]),
        not_null=data["not_null"],
        primary_key=data["primary_key"],
        unique=data["unique"],
    )


def schema_to_dict(schema: TableSchema) -> dict:
    """A JSON-safe rendering of a :class:`TableSchema`."""
    return {
        "name": schema.name,
        "columns": [column_to_dict(column) for column in schema.columns],
    }


def schema_from_dict(data: dict) -> TableSchema:
    """Rebuild a :class:`TableSchema` from :func:`schema_to_dict` output."""
    return TableSchema(
        name=data["name"],
        columns=[column_from_dict(column) for column in data["columns"]],
    )


# -- snapshot build / write ------------------------------------------------------


def _catalog_to_dict(catalog) -> dict:
    return {
        "version": catalog.version,
        "changes": [
            {
                "version": change.version,
                "timestamp": change.timestamp,
                "kind": change.kind,
                "table": change.table,
                "detail": change.detail,
            }
            for change in catalog.changes()
        ],
    }


def _table_meta(table) -> dict:
    """The table metadata both checkpoint formats share (no row data)."""
    return {
        "schema": schema_to_dict(table.schema),
        "next_row_id": table.next_row_id,
        "version": table.version,
        "schema_version": table.schema_version,
        "indexes": [
            {
                "name": index.name,
                "column": index.column,
                "unique": index.unique,
                "kind": index.kind,
            }
            for index in table.index_definitions()
        ],
    }


def build_snapshot(database, lsn: int) -> dict:
    """Serialize ``database`` into a JSON-safe v1 (full) snapshot payload.

    ``lsn`` is the last WAL LSN the snapshot covers; replay skips records at
    or below it.  Row dicts hold only coerced SQL values (int/float/str/bool/
    NULL), so JSON round-trips them exactly.
    """
    tables = []
    for name in database.table_names():
        table = database.table(name)
        meta = _table_meta(table)
        meta["rows"] = [[row_id, row] for row_id, row in table.scan()]
        tables.append(meta)
    return {
        "format": _FORMAT_VERSION,
        "name": database.name,
        "lsn": lsn,
        "catalog": _catalog_to_dict(database.catalog),
        "tables": tables,
    }


def build_checkpoint(database, lsn: int) -> dict:
    """Serialize ``database`` into a v2 (incremental) checkpoint payload.

    Holds no rows: each table contributes its page directory —
    ``[ordinal, head_frame, live_count]`` per heap page — pointing into the
    already-flushed page file.  The caller must have flushed the tables'
    heap pages first (:meth:`~repro.storage.buffer_pool.PageStore.flush`),
    or ``page_directory`` will have nothing to point at.
    """
    tables = []
    for name in database.table_names():
        table = database.table(name)
        meta = _table_meta(table)
        meta["page_slots"] = table.page_slots
        meta["pages"] = table.page_directory()
        tables.append(meta)
    return {
        "format": CHECKPOINT_FORMAT_VERSION,
        "name": database.name,
        "lsn": lsn,
        "catalog": _catalog_to_dict(database.catalog),
        "tables": tables,
    }


def _write_payload(payload: dict, path: str, version: int) -> int:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    header = (
        f"{_HEADER_PREFIX} v{version} crc={zlib.crc32(body):08x} len={len(body)}\n"
    ).encode("ascii")
    tmp_path = path + SNAPSHOT_TMP_SUFFIX
    with open(tmp_path, "wb") as handle:
        handle.write(header)
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    fsync_directory(os.path.dirname(path))
    return len(header) + len(body)


def write_snapshot(database, path: str | os.PathLike, lsn: int) -> int:
    """Write an atomic v1 (full) snapshot of ``database`` to ``path``.

    Returns the number of bytes written.  The write goes to
    ``<path>.tmp`` first and is published with ``os.replace``; the directory
    is synced afterwards so the rename itself survives a power cut.
    """
    return _write_payload(
        build_snapshot(database, lsn), os.fspath(path), _FORMAT_VERSION
    )


def write_checkpoint(database, path: str | os.PathLike, lsn: int) -> int:
    """Write an atomic v2 (incremental) checkpoint of ``database`` to ``path``.

    Same publish protocol as :func:`write_snapshot`; only the payload differs
    (page directory instead of inline rows), so size — and latency — is
    proportional to schema + page count, not row count.
    """
    return _write_payload(
        build_checkpoint(database, lsn), os.fspath(path), CHECKPOINT_FORMAT_VERSION
    )


def load_snapshot(path: str | os.PathLike) -> dict | None:
    """Load and verify a snapshot; ``None`` when no snapshot exists.

    A stale ``.tmp`` file from a checkpoint that died before its rename is
    ignored (the atomic-rename protocol guarantees the real file is intact).
    A *published* snapshot that fails its header or CRC check, however, is
    unrecoverable — the WAL was truncated when it was written — so that
    raises :class:`~repro.errors.DurabilityError` instead of silently
    opening an empty database over lost data.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return None
    newline = raw.find(b"\n")
    if newline < 0 or not raw.startswith(_HEADER_PREFIX.encode("ascii")):
        raise DurabilityError(f"snapshot {path!r} has a damaged header")
    try:
        fields = dict(
            part.split("=", 1)
            for part in raw[:newline].decode("ascii").split()
            if "=" in part
        )
        expected_crc = int(fields["crc"], 16)
        expected_len = int(fields["len"])
    except (KeyError, ValueError, UnicodeDecodeError) as exc:
        raise DurabilityError(f"snapshot {path!r} has a damaged header") from exc
    body = raw[newline + 1 :]
    if len(body) != expected_len or zlib.crc32(body) != expected_crc:
        raise DurabilityError(
            f"snapshot {path!r} failed its integrity check "
            f"(expected {expected_len} bytes, crc {expected_crc:08x})"
        )
    return json.loads(body.decode("utf-8"))
