"""Checkpoint snapshots: the full database state in one atomic file.

A snapshot bounds recovery time: instead of replaying the write-ahead log
from the beginning of time, :mod:`repro.storage.recovery` loads the latest
snapshot and replays only the log tail written after it.  The checkpoint
protocol is the classic one:

1. flush the WAL (everything the snapshot will contain is on disk first),
2. serialize the whole database — catalog history, table schemas, index
   definitions, version counters, heap rows with their row ids — together
   with the WAL's last LSN,
3. write it to ``snapshot.json.tmp``, ``fsync``, then **atomically rename**
   over ``snapshot.json`` (readers only ever see the old or the new complete
   snapshot, never a half-written one),
4. truncate the WAL.

A crash between steps 3 and 4 leaves committed records in the log that the
snapshot already contains; replay skips them by LSN.  A crash before step 3's
rename leaves a stale ``.tmp`` file that recovery ignores.

The file itself is a one-line header (format version, CRC32 and length of the
body) followed by a JSON body, so recovery can tell a valid snapshot from a
damaged one without trusting its contents.
"""

from __future__ import annotations

import json
import os
import zlib

from repro.errors import DurabilityError
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.types import DataType
from repro.storage.wal import fsync_directory

#: File name of the snapshot inside a database's ``data_dir``.
SNAPSHOT_FILE_NAME = "snapshot.json"
#: Suffix of the in-progress file the atomic rename publishes.
SNAPSHOT_TMP_SUFFIX = ".tmp"

_HEADER_PREFIX = "REPRO-SNAPSHOT"
_FORMAT_VERSION = 1


# -- schema (de)serialization --------------------------------------------------
#
# Shared with the WAL's DDL records: a CREATE TABLE logs the same schema dict
# a snapshot stores, so both replay paths build identical TableSchema objects.


def column_to_dict(column: ColumnSchema) -> dict:
    """A JSON-safe rendering of a :class:`ColumnSchema` (snapshot tables,
    WAL CREATE TABLE and ALTER TABLE … ADD COLUMN records)."""
    return {
        "name": column.name,
        "type": column.data_type.value,
        "not_null": column.not_null,
        "primary_key": column.primary_key,
        "unique": column.unique,
    }


def column_from_dict(data: dict) -> ColumnSchema:
    """Rebuild a :class:`ColumnSchema` from :func:`column_to_dict` output."""
    return ColumnSchema(
        name=data["name"],
        data_type=DataType(data["type"]),
        not_null=data["not_null"],
        primary_key=data["primary_key"],
        unique=data["unique"],
    )


def schema_to_dict(schema: TableSchema) -> dict:
    """A JSON-safe rendering of a :class:`TableSchema`."""
    return {
        "name": schema.name,
        "columns": [column_to_dict(column) for column in schema.columns],
    }


def schema_from_dict(data: dict) -> TableSchema:
    """Rebuild a :class:`TableSchema` from :func:`schema_to_dict` output."""
    return TableSchema(
        name=data["name"],
        columns=[column_from_dict(column) for column in data["columns"]],
    )


# -- snapshot build / write ------------------------------------------------------


def build_snapshot(database, lsn: int) -> dict:
    """Serialize ``database`` into a JSON-safe snapshot payload.

    ``lsn`` is the last WAL LSN the snapshot covers; replay skips records at
    or below it.  Row dicts hold only coerced SQL values (int/float/str/bool/
    NULL), so JSON round-trips them exactly.
    """
    catalog = database.catalog
    tables = []
    for name in database.table_names():
        table = database.table(name)
        tables.append(
            {
                "schema": schema_to_dict(table.schema),
                "next_row_id": table.next_row_id,
                "version": table.version,
                "schema_version": table.schema_version,
                "indexes": [
                    {
                        "name": index.name,
                        "column": index.column,
                        "unique": index.unique,
                        "kind": index.kind,
                    }
                    for index in table.index_definitions()
                ],
                "rows": [[row_id, row] for row_id, row in table.scan()],
            }
        )
    return {
        "format": _FORMAT_VERSION,
        "name": database.name,
        "lsn": lsn,
        "catalog": {
            "version": catalog.version,
            "changes": [
                {
                    "version": change.version,
                    "timestamp": change.timestamp,
                    "kind": change.kind,
                    "table": change.table,
                    "detail": change.detail,
                }
                for change in catalog.changes()
            ],
        },
        "tables": tables,
    }


def write_snapshot(database, path: str | os.PathLike, lsn: int) -> int:
    """Write an atomic snapshot of ``database`` to ``path``.

    Returns the number of bytes written.  The write goes to
    ``<path>.tmp`` first and is published with ``os.replace``; the directory
    is synced afterwards so the rename itself survives a power cut.
    """
    path = os.fspath(path)
    body = json.dumps(build_snapshot(database, lsn), separators=(",", ":")).encode("utf-8")
    header = (
        f"{_HEADER_PREFIX} v{_FORMAT_VERSION} crc={zlib.crc32(body):08x} len={len(body)}\n"
    ).encode("ascii")
    tmp_path = path + SNAPSHOT_TMP_SUFFIX
    with open(tmp_path, "wb") as handle:
        handle.write(header)
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    fsync_directory(os.path.dirname(path))
    return len(header) + len(body)


def load_snapshot(path: str | os.PathLike) -> dict | None:
    """Load and verify a snapshot; ``None`` when no snapshot exists.

    A stale ``.tmp`` file from a checkpoint that died before its rename is
    ignored (the atomic-rename protocol guarantees the real file is intact).
    A *published* snapshot that fails its header or CRC check, however, is
    unrecoverable — the WAL was truncated when it was written — so that
    raises :class:`~repro.errors.DurabilityError` instead of silently
    opening an empty database over lost data.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return None
    newline = raw.find(b"\n")
    if newline < 0 or not raw.startswith(_HEADER_PREFIX.encode("ascii")):
        raise DurabilityError(f"snapshot {path!r} has a damaged header")
    try:
        fields = dict(
            part.split("=", 1)
            for part in raw[:newline].decode("ascii").split()
            if "=" in part
        )
        expected_crc = int(fields["crc"], 16)
        expected_len = int(fields["len"])
    except (KeyError, ValueError, UnicodeDecodeError) as exc:
        raise DurabilityError(f"snapshot {path!r} has a damaged header") from exc
    body = raw[newline + 1 :]
    if len(body) != expected_len or zlib.crc32(body) != expected_crc:
        raise DurabilityError(
            f"snapshot {path!r} failed its integrity check "
            f"(expected {expected_len} bytes, crc {expected_crc:08x})"
        )
    return json.loads(body.decode("utf-8"))
