"""The buffer pool: pinned, dirty-tracked logical pages over the pager.

Every heap page and every B+ tree node in the engine lives behind a
:class:`PageStore`.  A page is a plain Python object (the heap's slot dict,
a tree's node dict) plus a *codec* that can serialize it to bytes; the
store keeps a bounded set of them resident, spills the least-recently-used
ones to the :class:`~repro.storage.pager.Pager` when the pool is full, and
reloads them on demand.

The access protocol is explicit and linted
(``analysis/hazard_lint.py`` rule ``page-pin-protocol``):

* **read path** — ``store.read(page_id, codec)`` returns the resident
  object without pinning.  The returned object must be treated as
  immutable; eviction may drop the store's reference at any time, after
  which in-place mutations are silently lost.
* **write path** — ``store.fetch(page_id, codec)`` pins the page (an
  eviction barrier), the caller mutates it, calls ``mark_dirty``, and
  ``unpin``s in a ``finally``.  Dirty pages are written back on eviction
  and at checkpoints.

An in-memory store (no pager) simply never evicts — it is today's
all-in-RAM behaviour with the same API.  A durable store caps residency at
``capacity`` pages (``buffer_pool_pages`` in
:class:`~repro.storage.exec_settings.ExecutionSettings`).

Checkpoint support is shadow-paged: ``flush`` writes dirty pages to *fresh*
frames, and frames referenced by the last **published** checkpoint are only
recycled after :meth:`PageStore.publish` installs the next one — so the
on-disk image named by ``snapshot.json`` stays byte-stable no matter where
a crash lands.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import DurabilityError

#: Default residency cap of a durable database's shared pool, in pages.
DEFAULT_BUFFER_POOL_PAGES = 1024


@dataclass
class BufferPoolStats:
    """A snapshot of one :class:`PageStore`'s counters."""

    #: Residency cap in pages; None for an unbounded (in-memory) store.
    capacity: int | None = None
    #: Pages currently resident / dirty / pinned.
    resident: int = 0
    dirty: int = 0
    pins: int = 0
    #: Lookups served from the pool vs. loaded from the pager.
    hits: int = 0
    misses: int = 0
    #: Pages dropped from residency under capacity pressure.
    evictions: int = 0
    #: Dirty-page serializations to the pager (evictions + checkpoint flushes).
    writebacks: int = 0
    #: Pages ever allocated (heap pages + index nodes).
    pages_allocated: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        if not lookups:
            return 1.0
        return self.hits / lookups


class _Resident:
    """One resident page: the live object plus its pool bookkeeping."""

    __slots__ = ("obj", "codec", "dirty", "pins")

    def __init__(self, obj, codec, dirty: bool):
        self.obj = obj
        self.codec = codec
        self.dirty = dirty
        self.pins = 0


class PageStore:
    """Pin/unpin page cache with LRU eviction and shadow-paged write-back.

    Thread-safe: parallel scan workers ``read`` concurrently while the
    coordinator mutates other pages; a single re-entrant lock serializes the
    (short) bookkeeping sections.  Pinned pages are never evicted, so a
    write sequence holds its page across its own store calls; *unpinned*
    objects stay valid Python objects for whoever already holds a reference
    (eviction drops the store's reference, it does not mutate the object) —
    which is what makes the pinless read path safe for iteration.
    """

    def __init__(self, pager=None, capacity: int | None = None):
        self._pager = pager
        self._capacity = capacity if pager is not None else None
        self._resident: OrderedDict[int, _Resident] = OrderedDict()
        self._chains: dict[int, list[int]] = {}  # page_id -> on-disk frame chain
        self._published: set[int] = set()  # frames the last checkpoint references
        self._deferred: list[int] = []  # superseded published frames
        self._next_page_id = 0
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._writebacks = 0
        self._allocated = 0

    @property
    def has_pager(self) -> bool:
        return self._pager is not None

    @property
    def capacity(self) -> int | None:
        return self._capacity

    # -- page lifecycle -------------------------------------------------------

    def allocate(self, obj, codec) -> int:
        """Register a brand-new page (resident, dirty); returns its id."""
        with self._lock:
            page_id = self._next_page_id
            self._next_page_id += 1
            self._resident[page_id] = _Resident(obj, codec, dirty=True)
            self._allocated += 1
            self._evict_to_capacity()
            return page_id

    def adopt_chain(self, head_frame: int) -> int:
        """Recovery: register a page whose image lives at ``head_frame``.

        The chain is walked (verifying every frame's checksum) but the page
        is *not* made resident — a cold open of a large database must not
        blow the pool.  Adopted frames join the published set: they are the
        checkpoint being recovered from.
        """
        with self._lock:
            if self._pager is None:
                raise DurabilityError("adopt_chain requires a pager-backed store")
            chain = self._pager.walk(head_frame)
            page_id = self._next_page_id
            self._next_page_id += 1
            self._chains[page_id] = chain
            self._published.update(chain)
            return page_id

    def free(self, page_id: int) -> None:
        """Drop a page entirely (its frames recycle, shadow rules applied)."""
        with self._lock:
            entry = self._resident.pop(page_id, None)
            if entry is not None and entry.pins:
                raise DurabilityError(f"page {page_id} freed while pinned")
            chain = self._chains.pop(page_id, None)
            if chain:
                self._release_chain(chain)

    # -- access protocol ------------------------------------------------------

    def read(self, page_id: int, codec):
        """The page object, loaded if needed, *without* pinning (read-only)."""
        with self._lock:
            return self._get(page_id, codec).obj

    def fetch(self, page_id: int, codec):
        """The page object, loaded if needed, pinned for mutation."""
        with self._lock:
            entry = self._get(page_id, codec)
            entry.pins += 1
            return entry.obj

    def unpin(self, page_id: int) -> None:
        with self._lock:
            entry = self._resident.get(page_id)
            if entry is not None and entry.pins > 0:
                entry.pins -= 1

    def mark_dirty(self, page_id: int) -> None:
        """Record that a fetched page was mutated (write-back required)."""
        with self._lock:
            entry = self._resident.get(page_id)
            if entry is None:
                raise DurabilityError(
                    f"mark_dirty on non-resident page {page_id}: mutate pages "
                    f"only while pinned via fetch()"
                )
            entry.dirty = True

    def _get(self, page_id: int, codec) -> _Resident:
        entry = self._resident.get(page_id)
        if entry is not None:
            self._hits += 1
            self._resident.move_to_end(page_id)
            return entry
        self._misses += 1
        chain = self._chains.get(page_id)
        if chain is None or self._pager is None:
            raise DurabilityError(f"unknown page {page_id} (freed or never stored)")
        payload, _ = self._pager.read(chain[0])
        entry = _Resident(codec.decode(payload), codec, dirty=False)
        self._resident[page_id] = entry
        self._evict_to_capacity(protect=page_id)
        return entry

    # -- eviction and write-back ----------------------------------------------

    def _evict_to_capacity(self, protect: int | None = None) -> None:
        if self._capacity is None:
            return
        while len(self._resident) > self._capacity:
            victim = None
            for page_id, entry in self._resident.items():  # LRU order
                if entry.pins == 0 and page_id != protect:
                    victim = page_id
                    break
            if victim is None:
                return  # everything pinned: soft cap, shrink on next unpin
            entry = self._resident.pop(victim)
            if entry.dirty:
                self._write_back(victim, entry)
            self._evictions += 1

    def _write_back(self, page_id: int, entry: _Resident) -> None:
        """Serialize one dirty page to fresh frames (shadow paging)."""
        new_chain = self._pager.write(entry.codec.encode(entry.obj))
        old_chain = self._chains.get(page_id)
        self._chains[page_id] = new_chain
        if old_chain:
            self._release_chain(old_chain)
        entry.dirty = False
        self._writebacks += 1

    def _release_chain(self, chain: list[int]) -> None:
        if self._pager is None:
            return
        recyclable = [frame for frame in chain if frame not in self._published]
        deferred = [frame for frame in chain if frame in self._published]
        if recyclable:
            self._pager.release(recyclable)
        self._deferred.extend(deferred)

    # -- checkpoint protocol --------------------------------------------------

    def flush(self, page_ids) -> int:
        """Write the dirty resident pages among ``page_ids`` to the pager.

        Non-resident pages are already on disk; clean resident pages have a
        valid chain from their last write-back.  Returns the pages written —
        the size of the checkpoint's incremental working set.
        """
        with self._lock:
            if self._pager is None:
                raise DurabilityError("flush requires a pager-backed store")
            written = 0
            for page_id in page_ids:
                entry = self._resident.get(page_id)
                if entry is not None and entry.dirty:
                    self._write_back(page_id, entry)
                    written += 1
            return written

    def chain_head(self, page_id: int) -> int:
        """The on-disk head frame of a flushed page (checkpoint directory)."""
        with self._lock:
            chain = self._chains.get(page_id)
            if not chain:
                raise DurabilityError(
                    f"page {page_id} has no on-disk image; flush() it first"
                )
            return chain[0]

    def publish(self, page_ids) -> None:
        """Install ``page_ids``'s current chains as the published checkpoint.

        Called after the checkpoint metadata has been atomically renamed:
        from here on, these frames are what recovery will read, so they are
        protected from reuse — and the frames the *previous* checkpoint
        protected (parked on the deferred list by ``_release_chain``) become
        recyclable at last.
        """
        with self._lock:
            published: set[int] = set()
            for page_id in page_ids:
                chain = self._chains.get(page_id)
                if chain:
                    published.update(chain)
            self._published = published
            if self._pager is not None and self._deferred:
                self._pager.release(
                    frame for frame in self._deferred if frame not in published
                )
            self._deferred = []

    def reconcile_free(self) -> None:
        """Recovery: everything outside the adopted chains is reusable."""
        with self._lock:
            if self._pager is None:
                return
            used: set[int] = set()
            for chain in self._chains.values():
                used.update(chain)
            self._pager.restrict_free(used)

    def begin_forked_read(self) -> None:
        """Post-fork (child side) hygiene for read-only workers.

        A forked aggregation worker inherits the parent's pager *file
        description*: seeking and reading through it would race sibling
        children (and the parent) on the shared file offset, and an LRU
        eviction's dirty write-back would scribble on frames the parent's
        shadow-paging discipline still protects.  The child therefore

        * replaces the pager with a private **read-only** clone (own
          descriptor, own offset, no write capability),
        * lifts the residency cap so eviction — the only path to a write —
          can never run, and
        * installs a fresh lock (the child is single-threaded; any lock
          state inherited mid-operation from another parent thread would
          otherwise deadlock it).

        In-memory stores (no pager) need only the lock: every page is
        already resident and copy-on-write shared.
        """
        self._lock = threading.RLock()
        self._capacity = None
        if self._pager is not None:
            self._pager = self._pager.readonly_clone()

    def sync(self) -> None:
        with self._lock:
            if self._pager is not None:
                self._pager.sync()

    def close(self) -> None:
        with self._lock:
            if self._pager is not None:
                self._pager.close()

    # -- observability --------------------------------------------------------

    def stats(self) -> BufferPoolStats:
        with self._lock:
            return BufferPoolStats(
                capacity=self._capacity,
                resident=len(self._resident),
                dirty=sum(1 for entry in self._resident.values() if entry.dirty),
                pins=sum(entry.pins for entry in self._resident.values()),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                writebacks=self._writebacks,
                pages_allocated=self._allocated,
            )
