"""Append-only binary write-ahead log.

The WAL is the first half of the engine's durability story (the second is
:mod:`repro.storage.snapshot`): every logical mutation — row DML, DDL, index
builds — is encoded as one JSON payload and appended to ``wal.log`` inside the
database's ``data_dir`` *after* it has been applied in memory, so that
:mod:`repro.storage.recovery` can rebuild the exact committed state by
replaying the log over the latest snapshot.

Record format (little-endian)::

    +---------+----------+---------+------------------+
    | lsn u64 | len  u32 | crc u32 | payload (len B)  |
    +---------+----------+---------+------------------+

``crc`` is the CRC32 of the packed ``(lsn, len)`` header fields plus the
payload, so a flipped bit anywhere in the record — header or body — is
detected.  LSNs increase monotonically across the database's lifetime and
*survive checkpoint truncation*: the snapshot records the last LSN it
contains, and replay skips records at or below it, which makes a crash
between "snapshot renamed" and "log truncated" harmless.

Sync policies (the classic durability/throughput dial):

* ``"commit"`` — every append is written and ``fsync``\\ ed before it returns;
  an acknowledged statement survives a kill -9.
* ``"batch"`` — appends accumulate in a group-commit buffer that is written
  and synced as **one** write once ``group_size`` records (or
  ``group_bytes``) pile up, amortizing the sync cost; a crash can lose at
  most the unsynced tail of acknowledged work.
* ``"off"`` — records are buffered and written without ever calling
  ``fsync``; durability is whatever the OS page cache decides.  Useful as a
  benchmark baseline and for throwaway runs.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import DurabilityError

#: ``(lsn, length, crc)`` header layout of one record.
_HEADER = struct.Struct("<QII")
#: The slice of the header covered by the CRC (everything but the CRC itself).
_CRC_PREFIX = struct.Struct("<QI")

#: Sanity bound on a single record's payload; anything larger in a header is
#: treated as tail corruption rather than an attempt to allocate gigabytes.
MAX_RECORD_BYTES = 1 << 30

#: Valid sync policies, in decreasing durability order.
SYNC_POLICIES = ("commit", "batch", "off")

#: Default group-commit batch bounds for ``sync="batch"``.
DEFAULT_GROUP_SIZE = 64
DEFAULT_GROUP_BYTES = 256 * 1024

#: File name of the log inside a database's ``data_dir``.
WAL_FILE_NAME = "wal.log"


def fsync_directory(directory: str) -> None:
    """Best-effort fsync of a directory entry (not supported everywhere).

    Needed after creating or renaming a file inside it: an ``fsync`` of the
    file persists its *contents*, but the directory entry pointing at it is
    separate metadata a power cut can still lose.
    """
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def encode_record(lsn: int, data: dict) -> bytes:
    """Encode one logical record as a framed, checksummed byte string."""
    payload = json.dumps(data, separators=(",", ":"), ensure_ascii=False).encode("utf-8")
    crc = zlib.crc32(_CRC_PREFIX.pack(lsn, len(payload)) + payload)
    return _HEADER.pack(lsn, len(payload), crc) + payload


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record: its LSN plus the logical payload."""

    lsn: int
    data: dict


@dataclass
class WalReadResult:
    """Everything :func:`read_wal` learned about a log file."""

    records: list[WalRecord] = field(default_factory=list)
    #: Byte length of the valid prefix (where a writer should resume).
    valid_length: int = 0
    #: True when trailing bytes after the valid prefix were torn or corrupt.
    torn_tail: bool = False
    #: Bytes dropped because of the torn/corrupt tail.
    bytes_dropped: int = 0

    @property
    def last_lsn(self) -> int:
        return self.records[-1].lsn if self.records else 0


def read_wal(path: str | os.PathLike) -> WalReadResult:
    """Decode a WAL file, stopping cleanly at the first torn/corrupt record.

    A missing file reads as an empty log.  The scan never raises on bad
    bytes: a partial header, an implausible length, a short payload, a CRC
    mismatch, or undecodable JSON all mark the tail as torn and end the
    replayable prefix exactly at the last intact record — which is the
    contract crash recovery needs (a record is either wholly in or wholly
    out).
    """
    result = WalReadResult()
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return result
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            break  # torn header
        lsn, length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            break  # implausible length: header corruption
        end = offset + _HEADER.size + length
        if end > total:
            break  # torn payload
        payload = data[offset + _HEADER.size : end]
        if zlib.crc32(_CRC_PREFIX.pack(lsn, length) + payload) != crc:
            break  # checksum mismatch
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            break  # CRC collision or writer bug; treat as corruption
        result.records.append(WalRecord(lsn=lsn, data=decoded))
        offset = end
        result.valid_length = end
    result.torn_tail = result.valid_length < total
    result.bytes_dropped = total - result.valid_length
    return result


@dataclass
class WalStats:
    """Counters describing a WAL's activity since the database opened."""

    sync_policy: str = "batch"
    #: Logical records appended.
    records: int = 0
    #: Bytes appended (headers + payloads).
    bytes_written: int = 0
    #: ``fsync`` calls issued (0 under ``sync="off"``).
    syncs: int = 0
    #: Group-commit flushes (each writes its whole pending batch at once).
    flushes: int = 0
    #: Largest number of records a single group-commit flush covered.
    max_batch_records: int = 0
    #: LSN of the most recently appended record.
    last_lsn: int = 0
    #: Records appended since the last checkpoint truncated the log.
    records_since_checkpoint: int = 0
    #: Checkpoints taken (snapshot written + log truncated).
    checkpoints: int = 0

    @property
    def avg_batch_records(self) -> float:
        """Mean group-commit batch size (records per flush)."""
        if not self.flushes:
            return 0.0
        return self.records / self.flushes


class WalWriter:
    """Appends framed records to a log file under a configurable sync policy.

    The writer owns the file handle from open to close.  When handed the
    ``valid_length`` of a recovered log it first truncates the torn tail, so
    new records never append after garbage.  LSN assignment continues from
    ``start_lsn`` (the recovered maximum of snapshot and log).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        sync: str = "batch",
        group_size: int = DEFAULT_GROUP_SIZE,
        group_bytes: int = DEFAULT_GROUP_BYTES,
        start_lsn: int = 0,
        valid_length: int | None = None,
    ):
        if sync not in SYNC_POLICIES:
            raise DurabilityError(
                f"unknown wal sync policy {sync!r}; expected one of {SYNC_POLICIES}"
            )
        if group_size < 1:
            raise DurabilityError("wal group_size must be at least 1")
        self.path = os.fspath(path)
        self.sync = sync
        self.group_size = group_size
        self.group_bytes = group_bytes
        self._lsn = start_lsn
        self._pending: list[bytes] = []
        self._pending_bytes = 0
        self._closed = False
        self.stats = WalStats(sync_policy=sync, last_lsn=start_lsn)
        # Create the file if missing, then open read-write so a recovered
        # torn tail can be truncated away before the first append.  A fresh
        # log's directory entry is synced immediately: under sync="commit"
        # the very first acknowledged record must not vanish with the whole
        # file on power loss.
        if not os.path.exists(self.path):
            open(self.path, "ab").close()
            if sync != "off":
                fsync_directory(os.path.dirname(self.path))
        self._file = open(self.path, "r+b")
        if valid_length is not None:
            self._file.truncate(valid_length)
        self._file.seek(0, os.SEEK_END)

    # -- appending -----------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        return self._lsn

    @property
    def closed(self) -> bool:
        return self._closed

    def append(self, data: dict) -> int:
        """Append one logical record; returns its LSN.

        The record is encoded immediately (so callers may hand over live row
        dicts) and becomes durable according to the sync policy: right away
        under ``"commit"``, at the next group-commit boundary under
        ``"batch"``, never guaranteed under ``"off"``.
        """
        if self._closed:
            raise DurabilityError(f"write-ahead log {self.path!r} is closed")
        self._lsn += 1
        encoded = encode_record(self._lsn, data)
        self._pending.append(encoded)
        self._pending_bytes += len(encoded)
        self.stats.records += 1
        self.stats.bytes_written += len(encoded)
        self.stats.last_lsn = self._lsn
        self.stats.records_since_checkpoint += 1
        if (
            self.sync == "commit"
            or len(self._pending) >= self.group_size
            or self._pending_bytes >= self.group_bytes
        ):
            self.flush()
        return self._lsn

    def flush(self) -> None:
        """Write the pending group-commit batch as one write (and sync it).

        Under ``sync="off"`` the batch is handed to the OS but never
        ``fsync``\\ ed.  Flushing an empty buffer is a no-op, so callers may
        flush defensively at statement or checkpoint boundaries.
        """
        if not self._pending:
            return
        batch = b"".join(self._pending)
        batch_records = len(self._pending)
        self._pending.clear()
        self._pending_bytes = 0
        self._file.write(batch)
        self._file.flush()
        if self.sync != "off":
            os.fsync(self._file.fileno())
            self.stats.syncs += 1
        self.stats.flushes += 1
        self.stats.max_batch_records = max(self.stats.max_batch_records, batch_records)

    # -- checkpoint support -----------------------------------------------------

    def truncate_log(self) -> None:
        """Drop every record (they are covered by a just-written snapshot).

        LSN numbering continues — the snapshot remembers the last LSN it
        contains, which is what keeps replay idempotent if the process dies
        between the snapshot rename and this truncation.
        """
        self._pending.clear()
        self._pending_bytes = 0
        self._file.truncate(0)
        self._file.seek(0)
        self._file.flush()
        if self.sync != "off":
            os.fsync(self._file.fileno())
        self.stats.records_since_checkpoint = 0
        self.stats.checkpoints += 1

    def close(self) -> None:
        """Flush pending records and release the file handle (idempotent)."""
        if self._closed:
            return
        self.flush()
        self._file.close()
        self._closed = True
