"""The :class:`Database` facade — the "standard DBMS" under the CQMS.

It owns the catalog and the tables, parses and executes SQL, and reports
per-statement execution statistics (elapsed time, cardinality, rows scanned)
which the Query Profiler stores as runtime query features.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import CatalogError, ExecutionError
from repro.storage.catalog import Catalog
from repro.storage.exec_settings import DEFAULT_SETTINGS, ExecutionSettings
from repro.storage.executor import Executor
from repro.storage.expression import Scope, evaluate, is_true
from repro.storage.operators import ExecutionContext
from repro.storage.plan_cache import (
    DEFAULT_MAX_DRIFT,
    DEFAULT_PLAN_CACHE_SIZE,
    PlanCache,
    PlanCacheStats,
)
from repro.storage.planner import DmlPlan, PlanExplanation, Planner, SelectPlan
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.statistics import TableStatistics
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.sql.ast_nodes import (
    AlterTableStatement,
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    InsertStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from repro.sql.parser import parse


@dataclass
class ExecutionStats:
    """Runtime statistics of one executed statement."""

    elapsed_seconds: float = 0.0
    rows_scanned: int = 0
    rows_joined: int = 0
    result_cardinality: int = 0
    statement_kind: str = "select"
    index_lookups: int = 0
    #: True when the statement executed through a re-bound cached plan.
    plan_cache_hit: bool = False
    #: Batches the executor consumed from the plan root (batched pipeline).
    batches: int = 0
    #: True when the raw SQL text skipped the parser via the statement cache.
    statement_cache_hit: bool = False


@dataclass
class QueryResult:
    """The result of :meth:`Database.execute`."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    rowcount: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    @property
    def plan_cache_hit(self) -> bool:
        """True when the statement executed through a re-bound cached plan."""
        return self.stats.plan_cache_hit

    def as_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> object:
        """The first column of the first row, or None for an empty result."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, name: str) -> list[object]:
        """All values of the named output column."""
        try:
            index = [c.lower() for c in self.columns].index(name.lower())
        except ValueError:
            raise ExecutionError(f"result has no column {name!r}") from None
        return [row[index] for row in self.rows]


class Database:
    """An in-memory relational database with a SQL interface.

    The ``clock`` argument makes time injectable: the CQMS and the workload
    generators use a simulated clock so that experiments are deterministic.
    """

    def __init__(
        self,
        name: str = "db",
        clock=None,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        plan_cache_max_drift: float = DEFAULT_MAX_DRIFT,
        exec_settings: ExecutionSettings | None = None,
    ):
        self.name = name
        self._catalog = Catalog()
        self._tables: dict[str, Table] = {}
        self._clock = clock if clock is not None else time.monotonic
        #: Batch-size / parallel-scan knobs, read by the planner and executor.
        self.exec_settings = exec_settings or DEFAULT_SETTINGS
        self._plan_cache_max_drift = plan_cache_max_drift
        self._plan_cache: PlanCache | None = None
        self.set_plan_cache_size(plan_cache_size)

    # -- catalog access ----------------------------------------------------------

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(table.name for table in self._tables.values())

    def schema_columns(self) -> dict[str, set[str]]:
        """Schema map consumed by the SQL feature extractor."""
        return self._catalog.schema_columns()

    # -- schema management (programmatic API) --------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Create a table from a programmatic :class:`TableSchema`."""
        self._catalog.register(schema, timestamp=self._now())
        table = Table(schema)
        self._tables[schema.name.lower()] = table
        return table

    def drop_table(self, name: str) -> None:
        self._catalog.unregister(name, timestamp=self._now())
        del self._tables[name.lower()]

    def insert_rows(self, table_name: str, rows) -> int:
        """Bulk-insert dictionaries into a table; returns the number inserted."""
        table = self.table(table_name)
        count = 0
        for row in rows:
            table.insert(row)
            count += 1
        return count

    def statistics(self, table_name: str, refresh: bool = False) -> TableStatistics:
        return self.table(table_name).statistics(refresh=refresh)

    # -- plan cache -----------------------------------------------------------------

    def set_plan_cache_size(self, size: int) -> None:
        """Resize (or, with 0, disable) the plan cache; existing entries drop."""
        if size <= 0:
            self._plan_cache = None
            return
        self._plan_cache = PlanCache(
            resolve_table=self._resolve_table_for_cache,
            capacity=size,
            max_drift=self._plan_cache_max_drift,
        )

    def plan_cache_stats(self) -> PlanCacheStats:
        """Hit/miss/invalidation counters of the plan cache."""
        if self._plan_cache is None:
            return PlanCacheStats(capacity=0)
        return self._plan_cache.stats()

    def _resolve_table_for_cache(self, name: str) -> Table | None:
        return self._tables.get(name.lower())

    def _peek_cached_plan(self, statement: Statement):
        """The statement's fresh cached plan, re-bound, without counting a
        lookup (EXPLAIN must not skew the hit rate)."""
        if self._plan_cache is None:
            return None
        prepared = self._plan_cache.prepare(statement)
        return self._plan_cache.lookup(prepared, count=False)

    def _plan_select(
        self, statement: SelectStatement, prepared=None, text: str | None = None
    ) -> tuple[SelectPlan, bool]:
        """A plan for the statement: from the cache when the template is fresh,
        otherwise freshly planned (and cached when safely re-bindable).

        ``prepared`` is a statement-cache hit (parse + parameterize already
        done); ``text`` is the raw SQL when known, so a freshly prepared
        statement can be remembered for future byte-identical resubmissions.
        """
        if self._plan_cache is None:
            return Planner(self).plan_select(statement), False
        if prepared is None:
            prepared = self._plan_cache.prepare(statement)
            if text is not None:
                self._plan_cache.store_statement(text, prepared)
        cached = self._plan_cache.lookup(prepared)
        if cached is not None:
            return cached.plan, True
        planner = Planner(self)
        plan = planner.plan_select(prepared.statement)
        if not planner.rebind_unsafe:
            self._plan_cache.store(prepared, plan)
        return plan, False

    def _plan_dml(
        self,
        statement: UpdateStatement | DeleteStatement,
        kind: str,
        prepared=None,
        text: str | None = None,
    ) -> tuple[DmlPlan, UpdateStatement | DeleteStatement, bool]:
        """Like :meth:`_plan_select` for UPDATE/DELETE.

        Also returns the statement to evaluate expressions from: the cached
        parameterized template on a hit (its parameter nodes re-bound to this
        instance's constants), so SET assignments see the right values.
        """
        planner = Planner(self)
        plan_method = planner.plan_update if kind == "update" else planner.plan_delete
        if self._plan_cache is None:
            return plan_method(statement), statement, False
        if prepared is None:
            prepared = self._plan_cache.prepare(statement)
            if text is not None:
                self._plan_cache.store_statement(text, prepared)
        cached = self._plan_cache.lookup(prepared)
        if cached is not None:
            return cached.plan, cached.statement, True
        plan = plan_method(prepared.statement)
        if not planner.rebind_unsafe:
            self._plan_cache.store(prepared, plan)
        return plan, prepared.statement, False

    # -- execution ------------------------------------------------------------------

    def execute(self, sql_or_statement, parameters: None = None) -> QueryResult:
        """Parse (if needed) and execute one statement.

        Raw SQL first consults the statement cache: a byte-identical
        resubmission reuses the memoized parse + parameterize result and skips
        the tokenizer/parser entirely (its plan-cache key included).
        """
        prepared = None
        text: str | None = None
        if isinstance(sql_or_statement, str):
            text = sql_or_statement
            if self._plan_cache is not None:
                prepared = self._plan_cache.lookup_statement(text)
            statement: Statement = (
                prepared.statement if prepared is not None else parse(text)
            )
        else:
            statement = sql_or_statement
        start = self._clock()
        result = self._dispatch(statement, prepared, text)
        result.stats.elapsed_seconds = max(0.0, self._clock() - start)
        result.stats.statement_cache_hit = prepared is not None
        return result

    def explain(self, sql_or_statement, analyze: bool = False) -> PlanExplanation:
        """Plan a statement — and with ``analyze=True``, run it — returning
        the plan tree.

        For SELECT statements the explanation shows the chosen access paths
        (``IndexScan`` vs ``SeqScan`` vs ``ParallelSeqScan``), join order,
        physical join operators with build sides, and per-node cardinality
        estimates.  ``analyze=True`` (EXPLAIN ANALYZE) additionally executes
        the statement and annotates every plan node with its actual row count,
        batch count, and wall time, plus an execution summary line; it is
        supported for SELECT only, since analyzing DML would mutate data.
        """
        statement: Statement = (
            parse(sql_or_statement) if isinstance(sql_or_statement, str) else sql_or_statement
        )
        if analyze:
            if not isinstance(statement, SelectStatement):
                raise ExecutionError(
                    "EXPLAIN ANALYZE supports SELECT statements only "
                    "(analyzing DML would mutate data)"
                )
            return self._explain_analyze(statement)
        if isinstance(statement, (SelectStatement, UpdateStatement, DeleteStatement)):
            kind = type(statement).__name__.removesuffix("Statement").lower()
            cached = self._peek_cached_plan(statement)
            if cached is not None:
                # Cached plans are templates: literals render as '?'.
                lines = cached.plan.explain_lines()
                if lines:
                    lines[0] += "  (cached)"
                return PlanExplanation(
                    statement_kind=kind,
                    lines=lines,
                    root=cached.plan.root,
                    plan_cache_hit=True,
                )
        if isinstance(statement, SelectStatement):
            plan = Planner(self).plan_select(statement)
            return PlanExplanation(
                statement_kind="select", lines=plan.explain_lines(), root=plan.root
            )
        if isinstance(statement, UpdateStatement):
            plan = Planner(self).plan_update(statement)
            return PlanExplanation(
                statement_kind="update", lines=plan.explain_lines(), root=plan.root
            )
        if isinstance(statement, DeleteStatement):
            plan = Planner(self).plan_delete(statement)
            return PlanExplanation(
                statement_kind="delete", lines=plan.explain_lines(), root=plan.root
            )
        kind = type(statement).__name__.removesuffix("Statement").lower()
        target = getattr(statement, "table", None)
        line = kind.title() if target is None else f"{kind.title()} [{target}]"
        return PlanExplanation(statement_kind=kind, lines=[line])

    def _explain_analyze(self, statement: SelectStatement) -> PlanExplanation:
        """EXPLAIN ANALYZE a SELECT: execute it collecting per-node actuals.

        The plan comes through the regular plan cache (the execution is real,
        so counting the lookup keeps the hit rate honest); per-node wall times
        use ``time.perf_counter`` while the summary's elapsed time uses the
        database's injectable clock, exactly like :meth:`execute`.
        """
        plan, cache_hit = self._plan_select(statement)
        executor = Executor(self)
        node_stats: dict = {}
        start = self._clock()
        columns, rows = executor.execute_plan(plan, node_stats=node_stats)
        elapsed = max(0.0, self._clock() - start)
        stats = ExecutionStats(
            elapsed_seconds=elapsed,
            rows_scanned=executor.metrics.rows_scanned,
            rows_joined=executor.metrics.rows_joined,
            result_cardinality=len(rows),
            statement_kind="select",
            index_lookups=executor.metrics.index_lookups,
            plan_cache_hit=cache_hit,
            batches=executor.metrics.batches,
        )
        lines = plan.explain_lines(node_stats=node_stats)
        if cache_hit:
            lines[0] += "  (cached)"
        lines.append(
            f"Execution: {len(rows)} rows in {elapsed * 1000.0:.3f} ms "
            f"(rows_scanned={stats.rows_scanned}, batches={stats.batches}, "
            f"index_lookups={stats.index_lookups})"
        )
        return PlanExplanation(
            statement_kind="select",
            lines=lines,
            root=plan.root,
            plan_cache_hit=cache_hit,
            analyzed=True,
            stats=stats,
        )

    def _dispatch(
        self, statement: Statement, prepared=None, text: str | None = None
    ) -> QueryResult:
        if isinstance(statement, SelectStatement):
            return self._execute_select(statement, prepared, text)
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement)
        if isinstance(statement, UpdateStatement):
            return self._execute_update(statement, prepared, text)
        if isinstance(statement, DeleteStatement):
            return self._execute_delete(statement, prepared, text)
        if isinstance(statement, CreateTableStatement):
            return self._execute_create_table(statement)
        if isinstance(statement, DropTableStatement):
            return self._execute_drop_table(statement)
        if isinstance(statement, AlterTableStatement):
            return self._execute_alter_table(statement)
        if isinstance(statement, CreateIndexStatement):
            return self._execute_create_index(statement)
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    def _execute_select(
        self, statement: SelectStatement, prepared=None, text: str | None = None
    ) -> QueryResult:
        plan, cache_hit = self._plan_select(statement, prepared, text)
        executor = Executor(self)
        columns, rows = executor.execute_plan(plan)
        stats = ExecutionStats(
            rows_scanned=executor.metrics.rows_scanned,
            rows_joined=executor.metrics.rows_joined,
            result_cardinality=len(rows),
            statement_kind="select",
            index_lookups=executor.metrics.index_lookups,
            plan_cache_hit=cache_hit,
            batches=executor.metrics.batches,
        )
        return QueryResult(columns=columns, rows=rows, stats=stats, rowcount=len(rows))

    def _execute_insert(self, statement: InsertStatement) -> QueryResult:
        table = self.table(statement.table)
        count = 0
        stats = ExecutionStats(statement_kind="insert")
        target_columns = list(statement.columns) or table.schema.column_names
        if statement.select is not None:
            select_result = self._execute_select(statement.select)
            # Reading the source is the work an INSERT ... SELECT does.
            stats.rows_scanned = select_result.stats.rows_scanned
            stats.rows_joined = select_result.stats.rows_joined
            stats.index_lookups = select_result.stats.index_lookups
            if len(select_result.columns) != len(target_columns):
                raise ExecutionError(
                    f"INSERT into {statement.table!r} selects "
                    f"{len(select_result.columns)} columns for "
                    f"{len(target_columns)} target columns"
                )
            for row in select_result.rows:
                table.insert(dict(zip(target_columns, row)))
                count += 1
        else:
            scope = Scope({})
            for row_exprs in statement.rows:
                values = [evaluate(expr, scope, None) for expr in row_exprs]
                if len(values) != len(target_columns):
                    raise ExecutionError(
                        f"INSERT into {statement.table!r} supplies {len(values)} values "
                        f"for {len(target_columns)} columns"
                    )
                table.insert(dict(zip(target_columns, values)))
                count += 1
        stats.result_cardinality = count
        return QueryResult(stats=stats, rowcount=count)

    def _find_dml_targets(
        self, plan: DmlPlan, executor: Executor
    ) -> list[tuple[int, dict]]:
        """Candidate ``(row_id, row)`` pairs of a planned UPDATE/DELETE.

        The plan's access path (index/range scan when the WHERE allows it)
        produces candidates; residual conjuncts are re-checked per row.  The
        list is materialized before any mutation so the scan never observes
        its own writes.
        """
        ctx = ExecutionContext(
            metrics=executor.metrics, run_subquery=executor._run_subquery
        )
        matches = []
        for row_id, row in plan.scan.pairs(ctx):
            scope = Scope({plan.binding: row})
            if all(
                is_true(evaluate(predicate, scope, executor._run_subquery))
                for predicate in plan.residual
            ):
                matches.append((row_id, row))
        return matches

    def _execute_update(
        self, statement: UpdateStatement, prepared=None, text: str | None = None
    ) -> QueryResult:
        table = self.table(statement.table)
        executor = Executor(self)
        plan, statement, cache_hit = self._plan_dml(statement, "update", prepared, text)
        count = 0
        for row_id, row in self._find_dml_targets(plan, executor):
            scope = Scope({statement.table: row})
            changes = {
                column: evaluate(value, scope, executor._run_subquery)
                for column, value in statement.assignments
            }
            table.update(row_id, changes)
            count += 1
        stats = ExecutionStats(
            statement_kind="update",
            result_cardinality=count,
            rows_scanned=executor.metrics.rows_scanned,
            rows_joined=executor.metrics.rows_joined,
            index_lookups=executor.metrics.index_lookups,
            plan_cache_hit=cache_hit,
        )
        return QueryResult(stats=stats, rowcount=count)

    def _execute_delete(
        self, statement: DeleteStatement, prepared=None, text: str | None = None
    ) -> QueryResult:
        table = self.table(statement.table)
        executor = Executor(self)
        plan, statement, cache_hit = self._plan_dml(statement, "delete", prepared, text)
        doomed = self._find_dml_targets(plan, executor)
        for row_id, _ in doomed:
            table.delete(row_id)
        stats = ExecutionStats(
            statement_kind="delete",
            result_cardinality=len(doomed),
            rows_scanned=executor.metrics.rows_scanned,
            rows_joined=executor.metrics.rows_joined,
            index_lookups=executor.metrics.index_lookups,
            plan_cache_hit=cache_hit,
        )
        return QueryResult(stats=stats, rowcount=len(doomed))

    def _execute_create_table(self, statement: CreateTableStatement) -> QueryResult:
        if self.has_table(statement.table):
            if statement.if_not_exists:
                return QueryResult(stats=ExecutionStats(statement_kind="create_table"))
            raise CatalogError(f"table {statement.table!r} already exists")
        columns = [
            ColumnSchema(
                name=column.name,
                data_type=DataType.from_sql(column.type_name),
                not_null=column.not_null,
                primary_key=column.primary_key,
                unique=column.unique,
            )
            for column in statement.columns
        ]
        self.create_table(TableSchema(name=statement.table, columns=columns))
        return QueryResult(stats=ExecutionStats(statement_kind="create_table"))

    def _execute_drop_table(self, statement: DropTableStatement) -> QueryResult:
        if not self.has_table(statement.table):
            if statement.if_exists:
                return QueryResult(stats=ExecutionStats(statement_kind="drop_table"))
            raise CatalogError(f"unknown table {statement.table!r}")
        self.drop_table(statement.table)
        return QueryResult(stats=ExecutionStats(statement_kind="drop_table"))

    def _execute_alter_table(self, statement: AlterTableStatement) -> QueryResult:
        table = self.table(statement.table)
        timestamp = self._now()
        if statement.action == "add_column":
            assert statement.column is not None
            column = ColumnSchema(
                name=statement.column.name,
                data_type=DataType.from_sql(statement.column.type_name),
                not_null=statement.column.not_null,
                unique=statement.column.unique,
            )
            table.add_column(column)
            self._catalog.replace_schema(
                statement.table,
                table.schema,
                kind="add_column",
                detail=column.name,
                timestamp=timestamp,
            )
        elif statement.action == "drop_column":
            table.drop_column(statement.column_name)
            self._catalog.replace_schema(
                statement.table,
                table.schema,
                kind="drop_column",
                detail=statement.column_name or "",
                timestamp=timestamp,
            )
        elif statement.action == "rename_column":
            table.rename_column(statement.column_name, statement.new_name)
            self._catalog.replace_schema(
                statement.table,
                table.schema,
                kind="rename_column",
                detail=f"{statement.column_name}->{statement.new_name}",
                timestamp=timestamp,
            )
        elif statement.action == "rename_table":
            old_name = statement.table
            table.rename(statement.new_name)
            self._tables[statement.new_name.lower()] = table
            del self._tables[old_name.lower()]
            self._catalog.replace_schema(
                old_name,
                table.schema,
                kind="rename_table",
                detail=f"{old_name}->{statement.new_name}",
                timestamp=timestamp,
            )
        else:
            raise ExecutionError(f"unsupported ALTER action {statement.action!r}")
        return QueryResult(stats=ExecutionStats(statement_kind="alter_table"))

    def _execute_create_index(self, statement: CreateIndexStatement) -> QueryResult:
        table = self.table(statement.table)
        table.create_index(
            statement.name,
            statement.column,
            unique=statement.unique,
            kind=statement.kind,
        )
        return QueryResult(stats=ExecutionStats(statement_kind="create_index"))

    # -- misc ---------------------------------------------------------------------

    def _now(self) -> float:
        return float(self._clock())

    def total_rows(self) -> int:
        """Total number of rows across all tables (used in tests and examples)."""
        return sum(len(table) for table in self._tables.values())
