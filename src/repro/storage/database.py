"""The :class:`Database` facade — the "standard DBMS" under the CQMS.

It owns the catalog and the tables, parses and executes SQL, and reports
per-statement execution statistics (elapsed time, cardinality, rows scanned)
which the Query Profiler stores as runtime query features.

A database is in-memory by default (the historical behaviour); opened with
:meth:`Database.open` it becomes *durable*: every mutation is logged to a
write-ahead log (:mod:`repro.storage.wal`), :meth:`Database.checkpoint`
publishes atomic snapshots (:mod:`repro.storage.snapshot`), and reopening the
same ``data_dir`` replays the committed state back
(:mod:`repro.storage.recovery`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.errors import (
    CatalogError,
    DurabilityError,
    ExecutionError,
    QueryTimeoutError,
    ReproError,
    SchemaError,
)
from repro.obs.metrics import engine_timer
from repro.storage.buffer_pool import BufferPoolStats, PageStore
from repro.storage.catalog import Catalog
from repro.storage.pager import PAGES_FILE_NAME, Pager
from repro.storage.recovery import (
    DirectoryLock,
    RecoveryReport,
    acquire_lock,
    recover,
    release_lock,
)
from repro.storage.snapshot import (
    SNAPSHOT_FILE_NAME,
    column_to_dict,
    schema_to_dict,
    write_checkpoint,
    write_snapshot,
)
from repro.storage.wal import DEFAULT_GROUP_SIZE, WAL_FILE_NAME, WalStats, WalWriter
from repro.storage.exec_settings import DEFAULT_SETTINGS, ExecutionSettings
from repro.storage.executor import Executor
from repro.storage.expression import Scope, evaluate, is_true
from repro.storage.aggregates import statement_has_aggregates
from repro.storage.operators import ExecutionContext, shutdown_scan_pool
from repro.storage.plan_cache import (
    DEFAULT_MAX_DRIFT,
    DEFAULT_PLAN_CACHE_SIZE,
    PlanCache,
    PlanCacheStats,
)
from repro.storage.planner import DmlPlan, PlanExplanation, Planner, SelectPlan
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.statistics import TableStatistics
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.sql.ast_nodes import (
    AlterTableStatement,
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    InsertStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from repro.sql.parser import parse


@dataclass
class ExecutionStats:
    """Runtime statistics of one executed statement."""

    elapsed_seconds: float = 0.0
    rows_scanned: int = 0
    rows_joined: int = 0
    result_cardinality: int = 0
    statement_kind: str = "select"
    index_lookups: int = 0
    #: True when the statement executed through a re-bound cached plan.
    plan_cache_hit: bool = False
    #: Batches the executor consumed from the plan root (batched pipeline).
    batches: int = 0
    #: True when the raw SQL text skipped the parser via the statement cache.
    statement_cache_hit: bool = False
    #: Groups formed by the aggregation stage (before HAVING filtering).
    groups_emitted: int = 0
    #: Wall time spent inside the aggregation stage (its input scan included).
    agg_seconds: float = 0.0
    #: Columnar batches built by scans (subset of ``batches``).
    columnar_batches: int = 0
    #: Wall time spent inside columnar kernels (selection + gathers).
    kernel_seconds: float = 0.0


@dataclass
class QueryResult:
    """The result of :meth:`Database.execute`."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    rowcount: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    @property
    def plan_cache_hit(self) -> bool:
        """True when the statement executed through a re-bound cached plan."""
        return self.stats.plan_cache_hit

    def as_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> object:
        """The first column of the first row, or None for an empty result."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, name: str) -> list[object]:
        """All values of the named output column."""
        try:
            index = [c.lower() for c in self.columns].index(name.lower())
        except ValueError:
            raise ExecutionError(f"result has no column {name!r}") from None
        return [row[index] for row in self.rows]


class Database:
    """A relational database with a SQL interface (in-memory or durable).

    The ``clock`` argument makes time injectable: the CQMS and the workload
    generators use a simulated clock so that experiments are deterministic.
    ``Database(...)`` is purely in-memory; ``Database.open(data_dir=...)``
    attaches the durability subsystem (WAL + snapshots + crash recovery).
    """

    def __init__(
        self,
        name: str = "db",
        clock=None,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        plan_cache_max_drift: float = DEFAULT_MAX_DRIFT,
        exec_settings: ExecutionSettings | None = None,
    ):
        self.name = name
        self._catalog = Catalog()
        self._tables: dict[str, Table] = {}
        self._clock = clock if clock is not None else time.monotonic
        #: Batch-size / parallel-scan knobs, read by the planner and executor.
        self.exec_settings = exec_settings or DEFAULT_SETTINGS
        self._plan_cache_max_drift = plan_cache_max_drift
        self._plan_cache: PlanCache | None = None
        self.set_plan_cache_size(plan_cache_size)
        #: The page store every heap page and index node of this database
        #: lives in.  In-memory databases get an unbounded store (nothing to
        #: evict to); Database.open swaps in a pager-backed one capped at
        #: ``exec_settings.buffer_pool_pages`` before recovery runs.
        self._store = PageStore()
        # Durability state; populated by Database.open for durable databases.
        self._data_dir: str | None = None
        self._wal: WalWriter | None = None
        self._lock: DirectoryLock | None = None
        self._checkpoint_interval = 0
        #: Replayed WAL records still counted in records_since_checkpoint.
        #: They press toward a checkpoint, but never a synchronous one on the
        #: statement path — see _maybe_checkpoint / checkpoint_if_due.
        self._recovered_backlog = 0
        self._closed = False
        #: What crash recovery found when this database was opened (None for
        #: in-memory databases).
        self.last_recovery: RecoveryReport | None = None
        #: Optional telemetry attachment (see :meth:`attach_telemetry`).
        self._telemetry = None
        #: The one duration source for executor seconds and timeout deadlines
        #: — the telemetry registry's timer once telemetry is attached.
        self.statement_timer = engine_timer
        #: The trace of the statement currently executing (set by execute()).
        self._active_trace = None

    # -- durability lifecycle ------------------------------------------------------

    @classmethod
    def open(
        cls,
        data_dir: str | os.PathLike,
        name: str = "db",
        clock=None,
        wal_sync: str = "batch",
        checkpoint_interval: int = 0,
        wal_group_size: int = DEFAULT_GROUP_SIZE,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        plan_cache_max_drift: float = DEFAULT_MAX_DRIFT,
        exec_settings: ExecutionSettings | None = None,
    ) -> "Database":
        """Open (creating if needed) a durable database rooted at ``data_dir``.

        Takes an exclusive ``flock`` on the directory's ``LOCK`` file (a
        second open of the same ``data_dir`` raises while the first database
        is alive; the kernel drops the lock automatically when a process is
        killed, so crashed owners never block reopening), runs crash
        recovery — latest valid
        snapshot plus the committed WAL tail — and attaches the write-ahead
        log so every subsequent mutation is logged under ``wal_sync``
        (``"off"`` | ``"commit"`` | ``"batch"``).  ``checkpoint_interval``
        > 0 auto-checkpoints after that many logged records.
        """
        if checkpoint_interval < 0:
            raise DurabilityError("checkpoint_interval must be non-negative")
        data_dir = os.fspath(data_dir)
        os.makedirs(data_dir, exist_ok=True)
        database = cls(
            name=name,
            clock=clock,
            plan_cache_size=plan_cache_size,
            plan_cache_max_drift=plan_cache_max_drift,
            exec_settings=exec_settings,
        )
        lock = acquire_lock(data_dir)
        try:
            database._store = PageStore(
                pager=Pager(os.path.join(data_dir, PAGES_FILE_NAME)),
                capacity=database.exec_settings.buffer_pool_pages,
            )
            report = recover(database, data_dir)
            # Frames outside the adopted checkpoint chains are leftovers of
            # the crashed run's unpublished writes; recycle them.
            database._store.reconcile_free()
            wal = WalWriter(
                os.path.join(data_dir, WAL_FILE_NAME),
                sync=wal_sync,
                group_size=wal_group_size,
                start_lsn=report.last_lsn,
                valid_length=report.wal_valid_length,
            )
        except BaseException:
            database._store.close()
            release_lock(lock)
            raise
        database._data_dir = data_dir
        database._lock = lock
        database._wal = wal
        database._checkpoint_interval = checkpoint_interval
        database.last_recovery = report
        # Records already sitting in the log count against the checkpoint
        # interval — otherwise a crash-reopen loop that writes fewer than
        # `interval` records per life would grow the WAL (and recovery time)
        # without bound.  They are remembered as backlog so they press toward
        # the open-time checkpoint below (and checkpoint_if_due), never a
        # synchronous checkpoint inside the first post-recovery statement.
        wal.stats.records_since_checkpoint = report.wal_records_scanned
        database._recovered_backlog = report.wal_records_scanned
        database._maybe_checkpoint(include_recovered=True)
        for table in database._tables.values():
            table.wal_emit = database._wal_append
        return database

    @property
    def is_durable(self) -> bool:
        """True when the database writes a WAL (opened via :meth:`open`)."""
        return self._wal is not None

    @property
    def data_dir(self) -> str | None:
        return self._data_dir

    @property
    def closed(self) -> bool:
        return self._closed

    def checkpoint(self) -> int:
        """Persist a consistent recovery point, then truncate the WAL.

        Incremental: only heap pages dirtied since the last checkpoint are
        written (shadow-paged to fresh frames, so the previous checkpoint
        stays intact until the new one publishes), followed by one small
        metadata file — cost tracks the working set, not the database size.
        Returns the metadata file's size in bytes.  The protocol (flush log
        → flush dirty pages → fsync page file → write ``snapshot.json.tmp``
        → fsync → atomic rename → truncate log) is crash-safe at every
        step; see :mod:`repro.storage.snapshot`.
        """
        self._assert_open()
        if self._wal is None:
            raise DurabilityError(
                "checkpoint() requires a durable database; use Database.open(data_dir=...)"
            )
        self._wal.flush()
        heap_pages = [
            page_id
            for table in self._tables.values()
            for page_id in table.heap_page_ids()
        ]
        self._store.flush(heap_pages)
        self._store.sync()
        size = write_checkpoint(
            self,
            os.path.join(self._data_dir, SNAPSHOT_FILE_NAME),
            lsn=self._wal.last_lsn,
        )
        self._store.publish(heap_pages)
        self._wal.truncate_log()
        self._recovered_backlog = 0
        return size

    def export_snapshot(self) -> int:
        """Write a v1 *full* snapshot (all rows inline) instead of an
        incremental checkpoint — same atomic file, same recovery entry
        point, but self-contained without the page file.  Kept for
        benchmark comparison and portable exports."""
        self._assert_open()
        if self._wal is None:
            raise DurabilityError(
                "export_snapshot() requires a durable database; use "
                "Database.open(data_dir=...)"
            )
        self._wal.flush()
        size = write_snapshot(
            self,
            os.path.join(self._data_dir, SNAPSHOT_FILE_NAME),
            lsn=self._wal.last_lsn,
        )
        self._wal.truncate_log()
        self._recovered_backlog = 0
        return size

    def close(self) -> None:
        """Flush the WAL, release the ``data_dir`` lock, and mark the
        database closed.  Idempotent; further operations raise."""
        if self._closed:
            return
        self._closed = True
        if self._wal is not None:
            self._wal.close()
        self._store.close()
        if self._lock is not None:
            release_lock(self._lock)
            self._lock = None
        # The parallel-scan worker pool is process-wide (shared by every
        # Database), so don't wait on it here — just ask it to wind down;
        # a later scan lazily re-creates it.
        shutdown_scan_pool(wait=False)

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def flush_wal(self) -> None:
        """Force the pending group-commit batch to disk (no-op in-memory)."""
        if self._wal is not None:
            self._wal.flush()

    def wal_stats(self) -> WalStats | None:
        """WAL activity counters, or None for an in-memory database."""
        if self._wal is None:
            return None
        return self._wal.stats

    def buffer_stats(self) -> BufferPoolStats:
        """Buffer-pool counters (hit rate, evictions, dirty pages, pins).

        Always available — an in-memory database reports its unbounded
        store (capacity None, no evictions) so operators can still see
        working-set size.
        """
        return self._store.stats()

    # -- telemetry ---------------------------------------------------------------

    @property
    def telemetry(self):
        """The attached :class:`~repro.obs.telemetry.EngineTelemetry`, or None."""
        return self._telemetry

    def attach_telemetry(self, telemetry) -> None:
        """Attach an :class:`~repro.obs.telemetry.EngineTelemetry` bundle.

        From then on every executed statement is counted and its latency
        observed into the bundle's registry, traces are recorded (slow ones
        into the ring buffer), and the registry's timer becomes the one
        duration source for executor instrumentation and timeout deadlines.
        """
        self._telemetry = telemetry
        self.statement_timer = telemetry.timer if telemetry is not None else engine_timer

    def _wal_append(self, record: dict) -> None:
        if self._wal is not None:
            self._wal.append(record)

    def _assert_open(self) -> None:
        if self._closed:
            raise DurabilityError(
                f"database {self.name!r} is closed; operations after close() "
                "would not be logged to the write-ahead log"
            )

    def _maybe_checkpoint(self, include_recovered: bool = False) -> None:
        """Auto-checkpoint once enough records accumulated since the last one.

        On the statement path (``include_recovered=False``) only records
        logged *by this process* count: replayed WAL records press toward a
        checkpoint too, but they were already paid for once — triggering a
        synchronous checkpoint inside the first post-recovery statement
        would bill recovery's backlog to an arbitrary unlucky query.  The
        backlog is drained by the explicit open-time call
        (``include_recovered=True``) and by :meth:`checkpoint_if_due`.
        """
        if self._wal is None or self._closed or self._checkpoint_interval <= 0:
            return
        accumulated = self._wal.stats.records_since_checkpoint
        if not include_recovered:
            accumulated -= self._recovered_backlog
        if accumulated >= self._checkpoint_interval:
            self.checkpoint()

    @property
    def checkpoint_due(self) -> bool:
        """True when the interval has been reached, recovered backlog
        included — the signal an off-path scheduler polls."""
        return (
            self._wal is not None
            and not self._closed
            and self._checkpoint_interval > 0
            and self._wal.stats.records_since_checkpoint >= self._checkpoint_interval
        )

    def checkpoint_if_due(self) -> int | None:
        """Checkpoint when :attr:`checkpoint_due`; for explicit scheduling
        *off* the statement path (idle ticks, background threads).  Returns
        the metadata size, or None when nothing was due."""
        if self.checkpoint_due:
            return self.checkpoint()
        return None

    # -- catalog access ----------------------------------------------------------

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(table.name for table in self._tables.values())

    def schema_columns(self) -> dict[str, set[str]]:
        """Schema map consumed by the SQL feature extractor."""
        return self._catalog.schema_columns()

    # -- schema management (programmatic API) --------------------------------------

    def create_table(self, schema: TableSchema, timestamp: float | None = None) -> Table:
        """Create a table from a programmatic :class:`TableSchema`.

        ``timestamp`` overrides the clock for the catalog event — crash
        recovery passes the originally logged time so the schema-change
        history replays faithfully.

        DDL follows a validate → log → apply order: every fallible check
        runs before the WAL append, and the apply steps after it cannot
        fail, so a failed append never leaves memory diverged from the log
        (the DML paths achieve the same with explicit rollback).
        """
        self._assert_open()
        timestamp = self._now() if timestamp is None else timestamp
        if self._catalog.has_table(schema.name):
            raise CatalogError(f"table {schema.name!r} already exists")
        self._wal_append(
            {"op": "create_table", "schema": schema_to_dict(schema), "ts": timestamp}
        )
        self._catalog.register(schema, timestamp=timestamp)
        table = Table(schema, store=self._store)
        self._tables[schema.name.lower()] = table
        if self._wal is not None:
            table.wal_emit = self._wal_append
        return table

    def drop_table(self, name: str, timestamp: float | None = None) -> None:
        self._assert_open()
        timestamp = self._now() if timestamp is None else timestamp
        if not self._catalog.has_table(name):
            raise CatalogError(f"unknown table {name!r}")
        self._wal_append({"op": "drop_table", "tbl": name, "ts": timestamp})
        self._catalog.unregister(name, timestamp=timestamp)
        self._tables.pop(name.lower()).drop_storage()

    def insert_rows(self, table_name: str, rows) -> int:
        """Bulk-insert dictionaries into a table; returns the number inserted."""
        self._assert_open()
        table = self.table(table_name)
        count = 0
        for row in rows:
            table.insert(row)
            count += 1
        self._maybe_checkpoint()
        return count

    def statistics(self, table_name: str, refresh: bool = False) -> TableStatistics:
        return self.table(table_name).statistics(refresh=refresh)

    # -- plan cache -----------------------------------------------------------------

    def set_plan_cache_size(self, size: int) -> None:
        """Resize (or, with 0, disable) the plan cache; existing entries drop."""
        if size <= 0:
            self._plan_cache = None
            return
        self._plan_cache = PlanCache(
            resolve_table=self._resolve_table_for_cache,
            capacity=size,
            max_drift=self._plan_cache_max_drift,
        )

    def plan_cache_stats(self) -> PlanCacheStats:
        """Hit/miss/invalidation counters of the plan cache."""
        if self._plan_cache is None:
            return PlanCacheStats(capacity=0)
        return self._plan_cache.stats()

    def _resolve_table_for_cache(self, name: str) -> Table | None:
        return self._tables.get(name.lower())

    def _peek_cached_plan(self, statement: Statement):
        """The statement's fresh cached plan, re-bound, without counting a
        lookup (EXPLAIN must not skew the hit rate)."""
        if self._plan_cache is None:
            return None
        prepared = self._plan_cache.prepare(statement)
        return self._plan_cache.lookup(prepared, count=False)

    def _plan_select(
        self, statement: SelectStatement, prepared=None, text: str | None = None
    ) -> tuple[SelectPlan, bool]:
        """A plan for the statement: from the cache when the template is fresh,
        otherwise freshly planned (and cached when safely re-bindable).

        ``prepared`` is a statement-cache hit (parse + parameterize already
        done); ``text`` is the raw SQL when known, so a freshly prepared
        statement can be remembered for future byte-identical resubmissions.
        """
        if self._plan_cache is None:
            return Planner(self).plan_select(statement), False
        if prepared is None:
            prepared = self._plan_cache.prepare(statement)
            if text is not None:
                self._plan_cache.store_statement(text, prepared)
        cached = self._plan_cache.lookup(prepared)
        if cached is not None:
            return cached.plan, True
        planner = Planner(self)
        plan = planner.plan_select(prepared.statement)
        if not planner.rebind_unsafe:
            self._plan_cache.store(prepared, plan)
        return plan, False

    def _plan_dml(
        self,
        statement: UpdateStatement | DeleteStatement,
        kind: str,
        prepared=None,
        text: str | None = None,
    ) -> tuple[DmlPlan, UpdateStatement | DeleteStatement, bool]:
        """Like :meth:`_plan_select` for UPDATE/DELETE.

        Also returns the statement to evaluate expressions from: the cached
        parameterized template on a hit (its parameter nodes re-bound to this
        instance's constants), so SET assignments see the right values.
        """
        planner = Planner(self)
        plan_method = planner.plan_update if kind == "update" else planner.plan_delete
        if self._plan_cache is None:
            return plan_method(statement), statement, False
        if prepared is None:
            prepared = self._plan_cache.prepare(statement)
            if text is not None:
                self._plan_cache.store_statement(text, prepared)
        cached = self._plan_cache.lookup(prepared)
        if cached is not None:
            return cached.plan, cached.statement, True
        plan = plan_method(prepared.statement)
        if not planner.rebind_unsafe:
            self._plan_cache.store(prepared, plan)
        return plan, prepared.statement, False

    # -- execution ------------------------------------------------------------------

    def execute(
        self,
        sql_or_statement,
        parameters: None = None,
        timeout_seconds: float | None = None,
    ) -> QueryResult:
        """Parse (if needed) and execute one statement.

        Raw SQL first consults the statement cache: a byte-identical
        resubmission reuses the memoized parse + parameterize result and skips
        the tokenizer/parser entirely (its plan-cache key included).

        ``timeout_seconds`` sets a cooperative budget: past it the executor
        raises :class:`~repro.errors.QueryTimeoutError` at the next batch
        boundary.  DML target scans are materialized before the first write,
        so a timed-out statement never leaves a half-applied mutation.
        """
        self._assert_open()
        telemetry = self._telemetry
        timer = self.statement_timer
        wall_start = timer()
        trace = None
        prepared = None
        text: str | None = None
        if isinstance(sql_or_statement, str):
            text = sql_or_statement
            if telemetry is not None:
                trace = telemetry.begin_trace(text)
                with trace.span("parse") as span:
                    if self._plan_cache is not None:
                        prepared = self._plan_cache.lookup_statement(text)
                    statement: Statement = (
                        prepared.statement if prepared is not None else parse(text)
                    )
                    span["statement_cache_hit"] = prepared is not None
            else:
                if self._plan_cache is not None:
                    prepared = self._plan_cache.lookup_statement(text)
                statement = prepared.statement if prepared is not None else parse(text)
        else:
            statement = sql_or_statement
            if telemetry is not None:
                trace = telemetry.begin_trace(type(statement).__name__)
        deadline = timer() + timeout_seconds if timeout_seconds is not None else None
        start = self._clock()
        self._active_trace = trace
        try:
            result = self._dispatch(statement, prepared, text, deadline=deadline)
        except QueryTimeoutError:
            if telemetry is not None:
                telemetry.statement_timed_out()
            raise
        except ReproError as error:
            if telemetry is not None:
                telemetry.statement_failed(type(error).__name__)
            raise
        finally:
            self._active_trace = None
        result.stats.elapsed_seconds = max(0.0, self._clock() - start)
        result.stats.statement_cache_hit = prepared is not None
        if telemetry is not None:
            telemetry.observe_statement(
                result.stats.statement_kind,
                max(0.0, timer() - wall_start),
                stats=result.stats,
                trace=trace,
            )
        self._maybe_checkpoint()
        return result

    def explain(self, sql_or_statement, analyze: bool = False) -> PlanExplanation:
        """Plan a statement — and with ``analyze=True``, run it — returning
        the plan tree.

        For SELECT statements the explanation shows the chosen access paths
        (``IndexScan`` vs ``SeqScan`` vs ``ParallelSeqScan``), join order,
        physical join operators with build sides, and per-node cardinality
        estimates.  ``analyze=True`` (EXPLAIN ANALYZE) additionally executes
        the statement and annotates every plan node with its actual row count,
        batch count, and wall time, plus an execution summary line; it is
        supported for SELECT only, since analyzing DML would mutate data.
        """
        statement: Statement = (
            parse(sql_or_statement) if isinstance(sql_or_statement, str) else sql_or_statement
        )
        if analyze:
            if not isinstance(statement, SelectStatement):
                raise ExecutionError(
                    "EXPLAIN ANALYZE supports SELECT statements only "
                    "(analyzing DML would mutate data)"
                )
            return self._explain_analyze(statement)
        if isinstance(statement, (SelectStatement, UpdateStatement, DeleteStatement)):
            kind = type(statement).__name__.removesuffix("Statement").lower()
            cached = self._peek_cached_plan(statement)
            if cached is not None:
                # Cached plans are templates: literals render as '?'.
                lines = cached.plan.explain_lines()
                if lines:
                    lines[0] += "  (cached)"
                return PlanExplanation(
                    statement_kind=kind,
                    lines=lines,
                    root=cached.plan.root,
                    plan_cache_hit=True,
                )
        if isinstance(statement, SelectStatement):
            plan = Planner(self).plan_select(statement)
            return PlanExplanation(
                statement_kind="select", lines=plan.explain_lines(), root=plan.root
            )
        if isinstance(statement, UpdateStatement):
            plan = Planner(self).plan_update(statement)
            return PlanExplanation(
                statement_kind="update", lines=plan.explain_lines(), root=plan.root
            )
        if isinstance(statement, DeleteStatement):
            plan = Planner(self).plan_delete(statement)
            return PlanExplanation(
                statement_kind="delete", lines=plan.explain_lines(), root=plan.root
            )
        kind = type(statement).__name__.removesuffix("Statement").lower()
        target = getattr(statement, "table", None)
        line = kind.title() if target is None else f"{kind.title()} [{target}]"
        return PlanExplanation(statement_kind=kind, lines=[line])

    def _explain_analyze(self, statement: SelectStatement) -> PlanExplanation:
        """EXPLAIN ANALYZE a SELECT: execute it collecting per-node actuals.

        The plan comes through the regular plan cache (the execution is real,
        so counting the lookup keeps the hit rate honest); per-node wall times
        use ``time.perf_counter`` while the summary's elapsed time uses the
        database's injectable clock, exactly like :meth:`execute`.
        """
        plan, cache_hit = self._plan_select(statement)
        executor = Executor(self)
        node_stats: dict = {}
        start = self._clock()
        columns, rows = executor.execute_plan(plan, node_stats=node_stats)
        elapsed = max(0.0, self._clock() - start)
        stats = ExecutionStats(
            elapsed_seconds=elapsed,
            rows_scanned=executor.metrics.rows_scanned,
            rows_joined=executor.metrics.rows_joined,
            result_cardinality=len(rows),
            statement_kind="select",
            index_lookups=executor.metrics.index_lookups,
            plan_cache_hit=cache_hit,
            batches=executor.metrics.batches,
            groups_emitted=executor.metrics.groups_emitted,
            agg_seconds=executor.metrics.agg_seconds,
            columnar_batches=executor.metrics.columnar_batches,
            kernel_seconds=executor.metrics.kernel_seconds,
        )
        lines = plan.explain_lines(node_stats=node_stats)
        if cache_hit:
            lines[0] += "  (cached)"
        summary = (
            f"Execution: {len(rows)} rows in {elapsed * 1000.0:.3f} ms "
            f"(rows_scanned={stats.rows_scanned}, batches={stats.batches}, "
            f"index_lookups={stats.index_lookups})"
        )
        if stats.columnar_batches:
            summary += (
                f" columnar: batches={stats.columnar_batches} "
                f"kernels={stats.kernel_seconds * 1000.0:.3f} ms"
            )
        if statement.group_by or statement_has_aggregates(statement):
            summary += (
                f" aggregation: groups={stats.groups_emitted} "
                f"in {stats.agg_seconds * 1000.0:.3f} ms"
            )
        lines.append(summary)
        return PlanExplanation(
            statement_kind="select",
            lines=lines,
            root=plan.root,
            plan_cache_hit=cache_hit,
            analyzed=True,
            stats=stats,
        )

    def _dispatch(
        self,
        statement: Statement,
        prepared=None,
        text: str | None = None,
        deadline: float | None = None,
    ) -> QueryResult:
        if isinstance(statement, SelectStatement):
            return self._execute_select(statement, prepared, text, deadline=deadline)
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement, deadline=deadline)
        if isinstance(statement, UpdateStatement):
            return self._execute_update(statement, prepared, text, deadline=deadline)
        if isinstance(statement, DeleteStatement):
            return self._execute_delete(statement, prepared, text, deadline=deadline)
        if isinstance(statement, CreateTableStatement):
            return self._execute_create_table(statement)
        if isinstance(statement, DropTableStatement):
            return self._execute_drop_table(statement)
        if isinstance(statement, AlterTableStatement):
            return self._execute_alter_table(statement)
        if isinstance(statement, CreateIndexStatement):
            return self._execute_create_index(statement)
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    def _execute_select(
        self,
        statement: SelectStatement,
        prepared=None,
        text: str | None = None,
        deadline: float | None = None,
    ) -> QueryResult:
        telemetry = self._telemetry
        trace = self._active_trace
        if trace is not None:
            with trace.span("plan") as span:
                plan, cache_hit = self._plan_select(statement, prepared, text)
                span["plan_cache_hit"] = cache_hit
        else:
            plan, cache_hit = self._plan_select(statement, prepared, text)
        executor = Executor(self, deadline=deadline)
        node_stats: dict | None = None
        if telemetry is not None and telemetry.trace_operators:
            node_stats = {}
        if trace is not None:
            with trace.span("execute"):
                columns, rows = executor.execute_plan(plan, node_stats=node_stats)
        else:
            columns, rows = executor.execute_plan(plan, node_stats=node_stats)
        if node_stats:
            self._report_operator_stats(plan, node_stats, trace)
        stats = ExecutionStats(
            rows_scanned=executor.metrics.rows_scanned,
            rows_joined=executor.metrics.rows_joined,
            result_cardinality=len(rows),
            statement_kind="select",
            index_lookups=executor.metrics.index_lookups,
            plan_cache_hit=cache_hit,
            batches=executor.metrics.batches,
            groups_emitted=executor.metrics.groups_emitted,
            agg_seconds=executor.metrics.agg_seconds,
            columnar_batches=executor.metrics.columnar_batches,
            kernel_seconds=executor.metrics.kernel_seconds,
        )
        return QueryResult(columns=columns, rows=rows, stats=stats, rowcount=len(rows))

    def _report_operator_stats(self, plan, node_stats: dict, trace) -> None:
        """Turn collected NodeStats into trace spans + per-operator series.

        Walks the plan tree in execution order so the span list reads like
        EXPLAIN ANALYZE output; keyed by operator class name because that is
        the stable, low-cardinality label the registry can afford.
        """
        labeled: list[tuple[str, object]] = []
        stack = [plan.root]
        while stack:
            op = stack.pop()
            stats = node_stats.get(id(op))
            if stats is not None:
                labeled.append((type(op).__name__, stats))
            stack.extend(reversed(op.children))
        if trace is not None:
            for op_name, stats in labeled:
                trace.add_span(
                    f"op:{op_name}",
                    stats.wall_seconds,
                    rows=stats.rows,
                    batches=stats.batches,
                )
        if self._telemetry is not None and labeled:
            self._telemetry.observe_operators(labeled)

    def _execute_insert(
        self, statement: InsertStatement, deadline: float | None = None
    ) -> QueryResult:
        table = self.table(statement.table)
        count = 0
        stats = ExecutionStats(statement_kind="insert")
        target_columns = list(statement.columns) or table.schema.column_names
        if statement.select is not None:
            # The readable half of INSERT ... SELECT honors the timeout
            # budget; once writes begin the statement runs to completion so a
            # cancellation never leaves a half-applied mutation.
            select_result = self._execute_select(statement.select, deadline=deadline)
            # Reading the source is the work an INSERT ... SELECT does.
            stats.rows_scanned = select_result.stats.rows_scanned
            stats.rows_joined = select_result.stats.rows_joined
            stats.index_lookups = select_result.stats.index_lookups
            if len(select_result.columns) != len(target_columns):
                raise ExecutionError(
                    f"INSERT into {statement.table!r} selects "
                    f"{len(select_result.columns)} columns for "
                    f"{len(target_columns)} target columns"
                )
            for row in select_result.rows:
                table.insert(dict(zip(target_columns, row)))
                count += 1
        else:
            scope = Scope({})
            for row_exprs in statement.rows:
                values = [evaluate(expr, scope, None) for expr in row_exprs]
                if len(values) != len(target_columns):
                    raise ExecutionError(
                        f"INSERT into {statement.table!r} supplies {len(values)} values "
                        f"for {len(target_columns)} columns"
                    )
                table.insert(dict(zip(target_columns, values)))
                count += 1
        stats.result_cardinality = count
        return QueryResult(stats=stats, rowcount=count)

    def _find_dml_targets(
        self, plan: DmlPlan, executor: Executor, deadline: float | None = None
    ) -> list[tuple[int, dict]]:
        """Candidate ``(row_id, row)`` pairs of a planned UPDATE/DELETE.

        The plan's access path (index/range scan when the WHERE allows it)
        produces candidates; residual conjuncts are re-checked per row.  The
        list is materialized before any mutation so the scan never observes
        its own writes — which is also why the timeout budget is only checked
        here, during the read phase: a cancelled DML statement has written
        nothing.
        """
        ctx = ExecutionContext(
            metrics=executor.metrics,
            run_subquery=executor._run_subquery,
            deadline=deadline,
            timer=self.statement_timer,
        )
        matches = []
        for position, (row_id, row) in enumerate(plan.scan.pairs(ctx)):
            if position % 128 == 0:
                ctx.tick()
            scope = Scope({plan.binding: row})
            if all(
                is_true(evaluate(predicate, scope, executor._run_subquery))
                for predicate in plan.residual
            ):
                matches.append((row_id, row))
        return matches

    def _execute_update(
        self,
        statement: UpdateStatement,
        prepared=None,
        text: str | None = None,
        deadline: float | None = None,
    ) -> QueryResult:
        table = self.table(statement.table)
        executor = Executor(self, deadline=deadline)
        plan, statement, cache_hit = self._plan_dml(statement, "update", prepared, text)
        count = 0
        for row_id, row in self._find_dml_targets(plan, executor, deadline):
            scope = Scope({statement.table: row})
            changes = {
                column: evaluate(value, scope, executor._run_subquery)
                for column, value in statement.assignments
            }
            table.update(row_id, changes)
            count += 1
        stats = ExecutionStats(
            statement_kind="update",
            result_cardinality=count,
            rows_scanned=executor.metrics.rows_scanned,
            rows_joined=executor.metrics.rows_joined,
            index_lookups=executor.metrics.index_lookups,
            plan_cache_hit=cache_hit,
        )
        return QueryResult(stats=stats, rowcount=count)

    def _execute_delete(
        self,
        statement: DeleteStatement,
        prepared=None,
        text: str | None = None,
        deadline: float | None = None,
    ) -> QueryResult:
        table = self.table(statement.table)
        executor = Executor(self, deadline=deadline)
        plan, statement, cache_hit = self._plan_dml(statement, "delete", prepared, text)
        doomed = self._find_dml_targets(plan, executor, deadline)
        for row_id, _ in doomed:
            table.delete(row_id)
        stats = ExecutionStats(
            statement_kind="delete",
            result_cardinality=len(doomed),
            rows_scanned=executor.metrics.rows_scanned,
            rows_joined=executor.metrics.rows_joined,
            index_lookups=executor.metrics.index_lookups,
            plan_cache_hit=cache_hit,
        )
        return QueryResult(stats=stats, rowcount=len(doomed))

    def _execute_create_table(self, statement: CreateTableStatement) -> QueryResult:
        if self.has_table(statement.table):
            if statement.if_not_exists:
                return QueryResult(stats=ExecutionStats(statement_kind="create_table"))
            raise CatalogError(f"table {statement.table!r} already exists")
        columns = [
            ColumnSchema(
                name=column.name,
                data_type=DataType.from_sql(column.type_name),
                not_null=column.not_null,
                primary_key=column.primary_key,
                unique=column.unique,
            )
            for column in statement.columns
        ]
        self.create_table(TableSchema(name=statement.table, columns=columns))
        return QueryResult(stats=ExecutionStats(statement_kind="create_table"))

    def _execute_drop_table(self, statement: DropTableStatement) -> QueryResult:
        if not self.has_table(statement.table):
            if statement.if_exists:
                return QueryResult(stats=ExecutionStats(statement_kind="drop_table"))
            raise CatalogError(f"unknown table {statement.table!r}")
        self.drop_table(statement.table)
        return QueryResult(stats=ExecutionStats(statement_kind="drop_table"))

    def alter_table(
        self,
        table_name: str,
        action: str,
        column: ColumnSchema | None = None,
        column_name: str | None = None,
        new_name: str | None = None,
        timestamp: float | None = None,
    ) -> None:
        """Apply one schema-evolution action (the data-level ALTER TABLE).

        Shared by SQL execution and WAL replay: the log stores exactly these
        arguments, so recovery re-runs the same code path (with its original
        ``timestamp``) instead of a parallel implementation.

        Like the other DDL entry points this validates everything fallible
        *before* appending the WAL record (dry-running the schema change on
        the immutable :class:`TableSchema`), so the apply steps after the
        append cannot fail and memory never diverges from the log.
        """
        self._assert_open()
        table = self.table(table_name)
        timestamp = self._now() if timestamp is None else timestamp
        if action == "add_column":
            assert column is not None
            table.schema.with_column_added(column)  # dry-run: duplicate check
            if column.not_null and len(table):
                raise SchemaError(
                    f"cannot add NOT NULL column {column.name!r} without a default"
                )
        elif action == "drop_column":
            table.schema.with_column_dropped(column_name)
        elif action == "rename_column":
            table.schema.with_column_renamed(column_name, new_name)
        elif action == "rename_table":
            # Renaming onto another table would silently destroy it (and the
            # WAL would replay the destruction).  Case-only self-renames are
            # fine — the old and new keys coincide.
            if (
                new_name.lower() != table_name.lower()
                and self._catalog.has_table(new_name)
            ):
                raise CatalogError(
                    f"cannot rename table {table_name!r} to {new_name!r}: "
                    "a table with that name already exists"
                )
        else:
            raise ExecutionError(f"unsupported ALTER action {action!r}")
        self._wal_append(
            {
                "op": "alter_table",
                "tbl": table_name,
                "action": action,
                "column": None if column is None else column_to_dict(column),
                "column_name": column_name,
                "new_name": new_name,
                "ts": timestamp,
            }
        )
        if action == "add_column":
            table.add_column(column)
            detail = column.name
        elif action == "drop_column":
            table.drop_column(column_name)
            detail = column_name or ""
        elif action == "rename_column":
            table.rename_column(column_name, new_name)
            detail = f"{column_name}->{new_name}"
        else:  # rename_table
            table.rename(new_name)
            # Remove the old key before inserting the new one: a case-only
            # rename (t -> T) maps both names to the same key, and the
            # delete-after-insert order would drop the table entirely.
            del self._tables[table_name.lower()]
            self._tables[new_name.lower()] = table
            detail = f"{table_name}->{new_name}"
        self._catalog.replace_schema(
            table_name,
            table.schema,
            kind=action,
            detail=detail,
            timestamp=timestamp,
        )

    def _execute_alter_table(self, statement: AlterTableStatement) -> QueryResult:
        column: ColumnSchema | None = None
        if statement.action == "add_column":
            assert statement.column is not None
            column = ColumnSchema(
                name=statement.column.name,
                data_type=DataType.from_sql(statement.column.type_name),
                not_null=statement.column.not_null,
                unique=statement.column.unique,
            )
        self.alter_table(
            statement.table,
            statement.action,
            column=column,
            column_name=statement.column_name,
            new_name=statement.new_name,
        )
        return QueryResult(stats=ExecutionStats(statement_kind="alter_table"))

    def _execute_create_index(self, statement: CreateIndexStatement) -> QueryResult:
        table = self.table(statement.table)
        table.create_index(
            statement.name,
            statement.column,
            unique=statement.unique,
            kind=statement.kind,
        )
        return QueryResult(stats=ExecutionStats(statement_kind="create_index"))

    # -- misc ---------------------------------------------------------------------

    def _now(self) -> float:
        return float(self._clock())

    def total_rows(self) -> int:
        """Total number of rows across all tables (used in tests and examples)."""
        return sum(len(table) for table in self._tables.values())
