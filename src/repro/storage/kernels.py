"""Columnar kernels: branch-light selection-vector loops over ColumnBatches.

The row-at-a-time engine compiles WHERE conjuncts into per-row closures
(:func:`repro.storage.operators.compile_predicate`).  This module compiles
the *same* predicate shapes — column-vs-literal comparisons, BETWEEN, IN,
LIKE, IS [NOT] NULL, column-vs-column — into **kernels**: functions of
``(batch, selection) -> selection`` that test a whole
:class:`~repro.storage.colbatch.ColumnBatch` column in one tight loop and
return the surviving row positions.  A kernel never mutates its input
batch (the ``columnar-mutation`` hazard-lint rule); the selection vector
is its only output.

Semantics contract: every kernel must agree row-for-row with the compiled
row-path check, which in turn agrees with ``is_true(evaluate(...))``.  The
fast inner loops therefore only engage when Python's native comparison is
provably identical to :func:`~repro.storage.types.compare_values` for the
operand types at hand — a non-bool numeric literal against an INT/FLOAT
column, or a string literal against a TEXT column (stored values are
always coerced to the column type, which is what makes this exact).  Any
other pairing (booleans, cross-type comparisons) falls back to a per-
element ``compare_values`` loop — still columnar, just not branch-light.

Literal values are read *per call*, never captured at compile time, so
cached plans whose ``ParamLiteral`` nodes are re-bound between executions
stay correct — the same rule the row-path closures follow.
"""

from __future__ import annotations

import operator as _operator
from typing import Callable

from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    InList,
    Literal,
    UnaryOp,
)
from repro.storage.colbatch import KIND_OBJECT, Column, ColumnBatch
from repro.storage.expression import like_regex
from repro.storage.types import DataType, compare_values

#: A kernel maps ``(batch, selection | None)`` to the surviving positions.
Kernel = Callable[[ColumnBatch, "list[int] | None"], "list[int]"]

_DIRECT_TESTS = {
    "=": _operator.eq,
    "<>": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}

_ORDERING_TESTS: dict[str, Callable[[int], bool]] = {
    "=": lambda ordering: ordering == 0,
    "<>": lambda ordering: ordering != 0,
    "<": lambda ordering: ordering < 0,
    "<=": lambda ordering: ordering <= 0,
    ">": lambda ordering: ordering > 0,
    ">=": lambda ordering: ordering >= 0,
}

_FLIPPED = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "<>": "<>"}

_NUMERIC_TYPES = (DataType.INTEGER, DataType.FLOAT)


def _indices(batch: ColumnBatch, selection):
    return range(len(batch.rows)) if selection is None else selection


def _is_plain_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _direct_comparable(column: Column, literal_value) -> bool:
    """True when ``stored <op> literal`` in native Python reproduces
    ``compare_values`` for every value this column can hold."""
    if _is_plain_number(literal_value):
        return column.dtype in _NUMERIC_TYPES
    if isinstance(literal_value, str):
        return column.dtype is DataType.TEXT
    return False


def _compare_select(column: Column, literal_value, op: str, indices) -> list[int]:
    """Positions where ``column <op> literal`` holds (NULL never passes)."""
    if _direct_comparable(column, literal_value):
        test = _DIRECT_TESTS[op]
        if column.kind != KIND_OBJECT:
            data = column.data
            validity = column.validity
            if validity is None:
                return [i for i in indices if test(data[i], literal_value)]
            return [
                i for i in indices if validity[i] and test(data[i], literal_value)
            ]
        values = column.values()
        return [
            i
            for i in indices
            if (value := values[i]) is not None and test(value, literal_value)
        ]
    test = _ORDERING_TESTS[op]
    values = column.values()
    out: list[int] = []
    for i in indices:
        ordering = compare_values(values[i], literal_value)
        if ordering is not None and test(ordering):
            out.append(i)
    return out


def _comparison_kernel(key: str, literal: Literal, op: str) -> Kernel:
    def kernel(batch, selection, _key=key, _literal=literal, _op=op):
        literal_value = _literal.value
        if literal_value is None:
            return []
        return _compare_select(
            batch.column(_key), literal_value, _op, _indices(batch, selection)
        )

    return kernel


def _column_comparison_kernel(left_key: str, right_key: str, op: str) -> Kernel:
    def kernel(batch, selection, _left=left_key, _right=right_key, _op=op):
        left, right = batch.column(_left), batch.column(_right)
        indices = _indices(batch, selection)
        both_numeric = left.dtype in _NUMERIC_TYPES and right.dtype in _NUMERIC_TYPES
        both_text = left.dtype is DataType.TEXT and right.dtype is DataType.TEXT
        left_values, right_values = left.values(), right.values()
        if both_numeric or both_text:
            test = _DIRECT_TESTS[_op]
            return [
                i
                for i in indices
                if (lv := left_values[i]) is not None
                and (rv := right_values[i]) is not None
                and test(lv, rv)
            ]
        test = _ORDERING_TESTS[_op]
        out: list[int] = []
        for i in indices:
            ordering = compare_values(left_values[i], right_values[i])
            if ordering is not None and test(ordering):
                out.append(i)
        return out

    return kernel


def _like_kernel(key: str, literal: Literal) -> Kernel:
    cache: dict[object, object] = {}

    def kernel(batch, selection, _key=key, _literal=literal, _cache=cache):
        pattern = _literal.value
        if pattern is None:
            return []
        regex = _cache.get(pattern)
        if regex is None:
            _cache.clear()  # one live pattern per (re-bindable) literal
            regex = like_regex(str(pattern))
            _cache[pattern] = regex
        column = batch.column(_key)
        values = column.values()
        fullmatch = regex.fullmatch
        if column.dtype is DataType.TEXT:
            # Schema coercion stores TEXT as str, so the row path's
            # ``str(value)`` is an identity call this lane can skip.
            return [
                i
                for i in _indices(batch, selection)
                if (value := values[i]) is not None
                and fullmatch(value) is not None
            ]
        return [
            i
            for i in _indices(batch, selection)
            if (value := values[i]) is not None and fullmatch(str(value)) is not None
        ]

    return kernel


def _null_test_kernel(key: str, want_null: bool) -> Kernel:
    def kernel(batch, selection, _key=key, _want=want_null):
        column = batch.column(_key)
        indices = _indices(batch, selection)
        validity = column.validity
        if validity is not None:
            if _want:
                return [i for i in indices if not validity[i]]
            return [i for i in indices if validity[i]]
        if column.kind != KIND_OBJECT:
            # Dense typed column: provably no NULLs.
            return [] if _want else list(indices)
        values = column.data
        if _want:
            return [i for i in indices if values[i] is None]
        return [i for i in indices if values[i] is not None]

    return kernel


def _between_kernel(key: str, low: Literal, high: Literal, negated: bool) -> Kernel:
    def kernel(batch, selection, _key=key, _low=low, _high=high, _negated=negated):
        low_value, high_value = _low.value, _high.value
        column = batch.column(_key)
        indices = _indices(batch, selection)
        if (
            low_value is not None
            and high_value is not None
            and _direct_comparable(column, low_value)
            and _direct_comparable(column, high_value)
        ):
            values = column.values()
            if _negated:
                return [
                    i
                    for i in indices
                    if (value := values[i]) is not None
                    and not (low_value <= value <= high_value)
                ]
            return [
                i
                for i in indices
                if (value := values[i]) is not None
                and low_value <= value <= high_value
            ]
        values = column.values()
        out: list[int] = []
        for i in indices:
            value = values[i]
            low_cmp = compare_values(value, low_value)
            high_cmp = compare_values(value, high_value)
            if low_cmp is None or high_cmp is None:
                continue  # unknown: WHERE drops the row
            inside = low_cmp >= 0 and high_cmp <= 0
            if (not inside) if _negated else inside:
                out.append(i)
        return out

    return kernel


def _in_list_kernel(key: str, literals: list[Literal], negated: bool) -> Kernel:
    def kernel(batch, selection, _key=key, _literals=literals, _negated=negated):
        column = batch.column(_key)
        indices = _indices(batch, selection)
        candidates = [literal.value for literal in _literals]
        saw_null = any(candidate is None for candidate in candidates)
        non_null = [candidate for candidate in candidates if candidate is not None]
        if not saw_null and all(
            _direct_comparable(column, candidate) for candidate in non_null
        ):
            members = set(non_null)
            values = column.values()
            if _negated:
                return [
                    i
                    for i in indices
                    if (value := values[i]) is not None and value not in members
                ]
            return [
                i
                for i in indices
                if (value := values[i]) is not None and value in members
            ]
        values = column.values()
        out: list[int] = []
        for i in indices:
            value = values[i]
            if value is None:
                continue
            found = any(
                compare_values(value, candidate) == 0 for candidate in non_null
            )
            if not found and saw_null:
                continue  # unknown: WHERE drops the row
            if (not found) if _negated else found:
                out.append(i)
        return out

    return kernel


def _resolve_key(bindings, column: ColumnRef) -> str | None:
    """The row-dict key for a locally resolvable column, or None.

    Columnar batches carry exactly one binding, so resolution degenerates
    to the row key; multi-binding shapes (joins) never reach this module.
    """
    from repro.storage.operators import resolve_binding_column

    if len(bindings) != 1:
        return None
    resolved = resolve_binding_column(bindings, column)
    if resolved is None:
        return None
    return resolved[1]


def compile_columnar_predicate(expr: Expression, bindings) -> Kernel | None:
    """Compile one WHERE conjunct into a kernel, or None.

    Recognizes exactly the shapes :func:`~repro.storage.operators.compile_predicate`
    does — a conjunct the row path cannot compile is not columnar-capable
    either, keeping the two fast paths' coverage identical.
    """
    if isinstance(expr, BinaryOp) and expr.op in _ORDERING_TESTS:
        left, right = expr.left, expr.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            key = _resolve_key(bindings, left)
            if key is None:
                return None
            return _comparison_kernel(key, right, expr.op)
        if isinstance(right, ColumnRef) and isinstance(left, Literal):
            key = _resolve_key(bindings, right)
            if key is None:
                return None
            return _comparison_kernel(key, left, _FLIPPED[expr.op])
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            left_key = _resolve_key(bindings, left)
            right_key = _resolve_key(bindings, right)
            if left_key is None or right_key is None:
                return None
            return _column_comparison_kernel(left_key, right_key, expr.op)
        return None
    if isinstance(expr, BinaryOp) and expr.op == "LIKE":
        if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
            key = _resolve_key(bindings, expr.left)
            if key is None:
                return None
            return _like_kernel(key, expr.right)
        return None
    if isinstance(expr, UnaryOp) and expr.op in ("IS NULL", "IS NOT NULL"):
        if not isinstance(expr.operand, ColumnRef):
            return None
        key = _resolve_key(bindings, expr.operand)
        if key is None:
            return None
        return _null_test_kernel(key, expr.op == "IS NULL")
    if isinstance(expr, Between):
        if (
            isinstance(expr.expr, ColumnRef)
            and isinstance(expr.low, Literal)
            and isinstance(expr.high, Literal)
        ):
            key = _resolve_key(bindings, expr.expr)
            if key is None:
                return None
            return _between_kernel(key, expr.low, expr.high, expr.negated)
        return None
    if isinstance(expr, InList):
        if isinstance(expr.expr, ColumnRef) and all(
            isinstance(value, Literal) for value in expr.values
        ):
            key = _resolve_key(bindings, expr.expr)
            if key is None:
                return None
            return _in_list_kernel(key, list(expr.values), expr.negated)
        return None
    return None


def compile_columnar_conjuncts(predicates, bindings) -> list[Kernel] | None:
    """Compile every conjunct or none — same all-or-nothing rule as
    :func:`~repro.storage.operators.compile_conjuncts`, for the same
    reason: partial compilation would reorder evaluation."""
    kernels: list[Kernel] = []
    for predicate in predicates:
        kernel = compile_columnar_predicate(predicate, bindings)
        if kernel is None:
            return None
        kernels.append(kernel)
    return kernels


def apply_kernels(kernels, batch: ColumnBatch) -> list[int] | None:
    """Run a conjunct chain over one batch.

    Returns the surviving selection (possibly empty), or None meaning
    "everything survives" when the chain is empty and the batch carried no
    selection — callers pass the result straight to
    :meth:`~repro.storage.colbatch.ColumnBatch.narrowed`."""
    selection = batch.selection
    for kernel in kernels:
        selection = kernel(batch, selection)
        if not selection:
            return selection
    return selection


def resolve_columnar_columns(columns, bindings) -> list[str] | None:
    """Row-dict keys for a list of ColumnRefs, or None unless all resolve."""
    keys: list[str] = []
    for column in columns:
        if not isinstance(column, ColumnRef):
            return None
        key = _resolve_key(bindings, column)
        if key is None:
            return None
        keys.append(key)
    return keys


def gather_columns(batch: ColumnBatch, keys: list[str]) -> list[tuple]:
    """Projection gather: the live rows' output tuples, in row order."""
    columns = [batch.column(key).values() for key in keys]
    selection = batch.selection
    if not columns:
        return [()] * len(batch)
    if selection is None:
        if len(columns) == 1:
            return [(value,) for value in columns[0]]
        return list(zip(*columns))
    if len(columns) == 1:
        values = columns[0]
        return [(values[i],) for i in selection]
    return list(zip(*[[values[i] for i in selection] for values in columns]))


def hash_group_keys(batch: ColumnBatch, keys: list[str]):
    """Bucket the live positions by group key.

    Returns ``(first-seen key order, {key: positions})``; a single-column
    key groups by the bare value (matching the row path's scalar key), a
    multi-column key by the value tuple.  Stored heap values are always
    hashable, so no ``hashable_value`` conversion is needed here — the
    same invariant the fused raw-aggregation path relies on.
    """
    indices = _indices(batch, batch.selection)
    buckets: dict = {}
    order: list = []
    if len(keys) == 1:
        values = batch.column(keys[0]).values()
        for i in indices:
            key = values[i]
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = bucket = []
                order.append(key)
            bucket.append(i)
        return order, buckets
    columns = [batch.column(key).values() for key in keys]
    for i in indices:
        key = tuple(values[i] for values in columns)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = bucket = []
            order.append(key)
        bucket.append(i)
    return order, buckets
