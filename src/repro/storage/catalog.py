"""The system catalog and its schema-change log.

The Query Maintenance component of the CQMS (paper Section 4.4) identifies
queries invalidated by schema evolution "by comparing the timestamp of a query
with that of the last schema modification on any input relation".  The catalog
therefore records every schema change as a :class:`SchemaChange` event with a
monotonically increasing version number and a logical timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError
from repro.storage.schema import TableSchema


@dataclass(frozen=True)
class SchemaChange:
    """One schema-evolution event."""

    version: int
    timestamp: float
    kind: str  # create_table, drop_table, add_column, drop_column, rename_column, rename_table
    table: str
    detail: str = ""


@dataclass
class Catalog:
    """Holds every table schema plus the history of schema changes."""

    _schemas: dict[str, TableSchema] = field(default_factory=dict)
    _changes: list[SchemaChange] = field(default_factory=list)
    _version: int = 0

    # -- lookup -------------------------------------------------------------

    def has_table(self, name: str) -> bool:
        return name.lower() in self._schemas

    def schema(self, name: str) -> TableSchema:
        try:
            return self._schemas[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def table_names(self) -> list[str]:
        return [schema.name for schema in self._schemas.values()]

    def schema_columns(self) -> dict[str, set[str]]:
        """Mapping of lower-cased table name to lower-cased column names.

        This is the structure the SQL feature extractor uses to resolve
        unqualified column references.
        """
        return {
            name: {column.name.lower() for column in schema.columns}
            for name, schema in self._schemas.items()
        }

    @property
    def version(self) -> int:
        return self._version

    def changes(self, since_version: int = 0) -> list[SchemaChange]:
        """Schema changes strictly after ``since_version``."""
        return [change for change in self._changes if change.version > since_version]

    def changes_for_table(self, table: str, since_version: int = 0) -> list[SchemaChange]:
        lowered = table.lower()
        return [
            change
            for change in self.changes(since_version)
            if change.table.lower() == lowered
        ]

    def last_change_timestamp(self, table: str) -> float | None:
        """Timestamp of the most recent schema change affecting ``table``."""
        changes = self.changes_for_table(table)
        if not changes:
            return None
        return changes[-1].timestamp

    # -- mutation -----------------------------------------------------------

    def register(self, schema: TableSchema, timestamp: float = 0.0) -> None:
        if self.has_table(schema.name):
            raise CatalogError(f"table {schema.name!r} already exists")
        self._schemas[schema.name.lower()] = schema
        self._record("create_table", schema.name, timestamp=timestamp)

    def unregister(self, name: str, timestamp: float = 0.0) -> None:
        if not self.has_table(name):
            raise CatalogError(f"unknown table {name!r}")
        del self._schemas[name.lower()]
        self._record("drop_table", name, timestamp=timestamp)

    def replace_schema(
        self, name: str, schema: TableSchema, kind: str, detail: str = "", timestamp: float = 0.0
    ) -> None:
        """Replace the schema of ``name`` (used for ALTER TABLE variants)."""
        if not self.has_table(name):
            raise CatalogError(f"unknown table {name!r}")
        del self._schemas[name.lower()]
        self._schemas[schema.name.lower()] = schema
        self._record(kind, schema.name, detail=detail, timestamp=timestamp)

    def restore(self, schemas: list[TableSchema], changes: list[dict], version: int) -> None:
        """Overwrite the catalog with snapshotted state (crash recovery).

        ``changes`` are the snapshot's JSON renderings of the schema-change
        history — the Query Maintenance component compares query timestamps
        against these, so they must survive restarts alongside the data.
        """
        self._schemas = {schema.name.lower(): schema for schema in schemas}
        self._changes = [
            SchemaChange(
                version=int(change["version"]),
                timestamp=float(change["timestamp"]),
                kind=change["kind"],
                table=change["table"],
                detail=change.get("detail", ""),
            )
            for change in changes
        ]
        self._version = version

    def _record(self, kind: str, table: str, detail: str = "", timestamp: float = 0.0) -> None:
        self._version += 1
        self._changes.append(
            SchemaChange(
                version=self._version,
                timestamp=timestamp,
                kind=kind,
                table=table,
                detail=detail,
            )
        )
