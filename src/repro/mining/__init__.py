"""Generic mining substrate used by the Query Miner.

* :mod:`repro.mining.similarity` — similarity/distance measures over queries
  (text, feature sets, weighted features, parse trees, output samples),
* :mod:`repro.mining.tfidf` — a small TF-IDF vectorizer with cosine similarity,
* :mod:`repro.mining.knn` — k-nearest-neighbour search over arbitrary items,
* :mod:`repro.mining.clustering` — k-medoids and agglomerative clustering over
  a pairwise distance function,
* :mod:`repro.mining.association_rules` — Apriori frequent itemsets and rules.
"""

from repro.mining.association_rules import (
    AssociationRule,
    Itemset,
    RuleIndex,
    apriori,
    mine_rules,
)
from repro.mining.clustering import ClusteringResult, agglomerative, k_medoids, silhouette_score
from repro.mining.knn import KNNIndex, Neighbor
from repro.mining.similarity import (
    jaccard_similarity,
    overlap_coefficient,
    weighted_feature_similarity,
    text_trigram_similarity,
    edit_distance,
)
from repro.mining.tfidf import TfIdfVectorizer, cosine_similarity

__all__ = [
    "AssociationRule",
    "Itemset",
    "RuleIndex",
    "apriori",
    "mine_rules",
    "ClusteringResult",
    "agglomerative",
    "k_medoids",
    "silhouette_score",
    "KNNIndex",
    "Neighbor",
    "jaccard_similarity",
    "overlap_coefficient",
    "weighted_feature_similarity",
    "text_trigram_similarity",
    "edit_distance",
    "TfIdfVectorizer",
    "cosine_similarity",
]
