"""Apriori frequent-itemset and association-rule mining.

The paper proposes that the CQMS "efficiently mine the query log for
association rules" (Section 2.3) to power context-aware completion ("for
queries that also include WaterSalinity, the most popular is WaterTemp") and
to mine common edit patterns (Section 4.3).  Transactions here are sets of
query-feature tokens; rules such as ``{table:watersalinity} ->
{table:watertemp}`` then drive the completion engine.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable


@dataclass(frozen=True)
class Itemset:
    """A frequent itemset with its absolute support count."""

    items: frozenset[str]
    support_count: int

    def support(self, num_transactions: int) -> float:
        if num_transactions == 0:
            return 0.0
        return self.support_count / num_transactions


@dataclass(frozen=True)
class AssociationRule:
    """An association rule ``antecedent -> consequent`` with its statistics."""

    antecedent: frozenset[str]
    consequent: frozenset[str]
    support: float
    confidence: float
    lift: float

    def __str__(self) -> str:
        left = ", ".join(sorted(self.antecedent))
        right = ", ".join(sorted(self.consequent))
        return (
            f"{{{left}}} -> {{{right}}} "
            f"(support={self.support:.3f}, confidence={self.confidence:.3f}, lift={self.lift:.2f})"
        )


def apriori(
    transactions: list[Iterable[str]],
    min_support: float = 0.05,
    max_size: int = 3,
) -> list[Itemset]:
    """Frequent itemsets of up to ``max_size`` items with support ≥ ``min_support``."""
    materialized = [frozenset(transaction) for transaction in transactions]
    num_transactions = len(materialized)
    if num_transactions == 0:
        return []
    min_count = max(1, int(min_support * num_transactions + 0.999999))

    # Frequent 1-itemsets.
    counts: Counter[str] = Counter()
    for transaction in materialized:
        counts.update(transaction)
    current = {
        frozenset([item]): count for item, count in counts.items() if count >= min_count
    }
    all_frequent: list[Itemset] = [
        Itemset(items=items, support_count=count) for items, count in current.items()
    ]

    size = 1
    while current and size < max_size:
        size += 1
        candidates = _generate_candidates(set(current), size)
        if not candidates:
            break
        candidate_counts: dict[frozenset[str], int] = defaultdict(int)
        for transaction in materialized:
            if len(transaction) < size:
                continue
            for candidate in candidates:
                if candidate <= transaction:
                    candidate_counts[candidate] += 1
        current = {
            candidate: count
            for candidate, count in candidate_counts.items()
            if count >= min_count
        }
        all_frequent.extend(
            Itemset(items=items, support_count=count) for items, count in current.items()
        )
    all_frequent.sort(key=lambda itemset: (-itemset.support_count, sorted(itemset.items)))
    return all_frequent


def _generate_candidates(frequent: set[frozenset[str]], size: int) -> set[frozenset[str]]:
    """Join step of Apriori with pruning of candidates having infrequent subsets."""
    items = sorted({item for itemset in frequent for item in itemset})
    candidates: set[frozenset[str]] = set()
    frequent_list = sorted(frequent, key=sorted)
    for index, first in enumerate(frequent_list):
        for second in frequent_list[index + 1 :]:
            union = first | second
            if len(union) != size:
                continue
            if all(frozenset(subset) in frequent for subset in combinations(union, size - 1)):
                candidates.add(union)
    # For size 2 the join above may miss pairs when 1-itemsets are singletons
    # with no overlap; generate pairs directly in that case.
    if size == 2:
        singles = [next(iter(itemset)) for itemset in frequent if len(itemset) == 1]
        for first, second in combinations(sorted(singles), 2):
            candidates.add(frozenset([first, second]))
    return candidates


def mine_rules(
    transactions: list[Iterable[str]],
    min_support: float = 0.05,
    min_confidence: float = 0.5,
    max_size: int = 3,
) -> list[AssociationRule]:
    """Association rules from frequent itemsets, sorted by confidence then lift."""
    materialized = [frozenset(transaction) for transaction in transactions]
    num_transactions = len(materialized)
    frequent = apriori(materialized, min_support=min_support, max_size=max_size)
    support_map = {itemset.items: itemset.support_count for itemset in frequent}
    rules: list[AssociationRule] = []
    for itemset in frequent:
        if len(itemset.items) < 2:
            continue
        for antecedent_size in range(1, len(itemset.items)):
            for antecedent_items in combinations(sorted(itemset.items), antecedent_size):
                antecedent = frozenset(antecedent_items)
                consequent = itemset.items - antecedent
                antecedent_count = support_map.get(antecedent)
                consequent_count = support_map.get(consequent)
                if not antecedent_count or not consequent_count:
                    continue
                confidence = itemset.support_count / antecedent_count
                if confidence < min_confidence:
                    continue
                support = itemset.support_count / num_transactions
                consequent_support = consequent_count / num_transactions
                lift = confidence / consequent_support if consequent_support else 0.0
                rules.append(
                    AssociationRule(
                        antecedent=antecedent,
                        consequent=consequent,
                        support=support,
                        confidence=confidence,
                        lift=lift,
                    )
                )
    rules.sort(key=lambda rule: (-rule.confidence, -rule.lift, sorted(rule.antecedent)))
    return rules


class RuleIndex:
    """Rules indexed by antecedent for fast lookup during query completion.

    Given the set of feature tokens already present in a partially written
    query, :meth:`suggestions` returns consequent tokens ordered by the
    confidence of the best matching rule — exactly the paper's
    "context-aware suggestions" mechanism.
    """

    def __init__(self, rules: list[AssociationRule]):
        self._rules = list(rules)
        self._by_antecedent: dict[frozenset[str], list[AssociationRule]] = defaultdict(list)
        for rule in rules:
            self._by_antecedent[rule.antecedent].append(rule)

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def rules(self) -> list[AssociationRule]:
        return list(self._rules)

    def suggestions(
        self, context: Iterable[str], limit: int = 10, exclude_context: bool = True
    ) -> list[tuple[str, float]]:
        """Consequent tokens applicable to ``context`` with their best confidence."""
        context_set = frozenset(context)
        scores: dict[str, float] = {}
        for antecedent, rules in self._by_antecedent.items():
            if not antecedent <= context_set:
                continue
            for rule in rules:
                for token in rule.consequent:
                    if exclude_context and token in context_set:
                        continue
                    weight = rule.confidence * (1.0 + 0.01 * len(antecedent))
                    if weight > scores.get(token, 0.0):
                        scores[token] = weight
        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        return ranked[:limit]
