"""Clustering over an arbitrary pairwise distance function.

The Query Miner clusters queries and query sessions (paper Section 4.3) to
deduplicate meta-query results, compress the log, and restrict
recommendations to "users who have similar query session patterns".  Because
query distances are not Euclidean (they come from feature Jaccard or tree
edit distances), we implement medoid-based and agglomerative algorithms that
only require a distance callable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

Distance = Callable[[object, object], float]


@dataclass
class ClusteringResult:
    """Cluster assignment for a list of items.

    ``labels[i]`` is the cluster id of ``items[i]``; ``medoids`` maps cluster
    id to the index of its representative item (for k-medoids) or to the index
    of the member closest to all others (for agglomerative).
    """

    items: list = field(default_factory=list)
    labels: list[int] = field(default_factory=list)
    medoids: dict[int, int] = field(default_factory=dict)

    @property
    def num_clusters(self) -> int:
        return len(set(self.labels)) if self.labels else 0

    def clusters(self) -> dict[int, list[int]]:
        """Mapping of cluster id to member indexes."""
        members: dict[int, list[int]] = {}
        for index, label in enumerate(self.labels):
            members.setdefault(label, []).append(index)
        return members

    def members(self, label: int) -> list:
        """The items belonging to a cluster."""
        return [self.items[index] for index, l in enumerate(self.labels) if l == label]

    def representative(self, label: int):
        """The representative (medoid) item of a cluster."""
        return self.items[self.medoids[label]]

    def label_of(self, index: int) -> int:
        return self.labels[index]


def _distance_matrix(items: Sequence, distance: Distance) -> list[list[float]]:
    n = len(items)
    matrix = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            d = float(distance(items[i], items[j]))
            matrix[i][j] = d
            matrix[j][i] = d
    return matrix


def k_medoids(
    items: Sequence,
    k: int,
    distance: Distance,
    max_iterations: int = 20,
    seed: int = 0,
) -> ClusteringResult:
    """Partition ``items`` into ``k`` clusters around medoids (PAM-style).

    Deterministic for a given ``seed``.  If ``k`` is not smaller than the
    number of items, every item becomes its own cluster.
    """
    items = list(items)
    n = len(items)
    if n == 0:
        return ClusteringResult(items=[], labels=[], medoids={})
    if k >= n:
        return ClusteringResult(
            items=items,
            labels=list(range(n)),
            medoids={index: index for index in range(n)},
        )
    matrix = _distance_matrix(items, distance)
    rng = random.Random(seed)
    medoids = sorted(rng.sample(range(n), k))

    def assign(current_medoids: list[int]) -> list[int]:
        labels = []
        for index in range(n):
            best = min(
                range(len(current_medoids)),
                key=lambda m: (matrix[index][current_medoids[m]], m),
            )
            labels.append(best)
        return labels

    labels = assign(medoids)
    for _ in range(max_iterations):
        new_medoids: list[int] = []
        for cluster in range(k):
            members = [index for index, label in enumerate(labels) if label == cluster]
            if not members:
                # Re-seed an empty cluster with the point farthest from its medoid.
                farthest = max(range(n), key=lambda index: matrix[index][medoids[labels[index]]])
                new_medoids.append(farthest)
                continue
            best_member = min(
                members, key=lambda candidate: sum(matrix[candidate][m] for m in members)
            )
            new_medoids.append(best_member)
        new_medoids = sorted(new_medoids)
        new_labels = assign(new_medoids)
        if new_medoids == medoids and new_labels == labels:
            break
        medoids, labels = new_medoids, new_labels
    return ClusteringResult(
        items=items,
        labels=labels,
        medoids={cluster: medoid for cluster, medoid in enumerate(medoids)},
    )


def agglomerative(
    items: Sequence,
    distance: Distance,
    num_clusters: int | None = None,
    distance_threshold: float | None = None,
    linkage: str = "average",
) -> ClusteringResult:
    """Bottom-up hierarchical clustering with average/single/complete linkage.

    Stop either when ``num_clusters`` remain or when the closest pair of
    clusters is farther apart than ``distance_threshold`` (at least one of the
    two must be given).
    """
    if num_clusters is None and distance_threshold is None:
        raise ValueError("provide num_clusters or distance_threshold")
    items = list(items)
    n = len(items)
    if n == 0:
        return ClusteringResult(items=[], labels=[], medoids={})
    matrix = _distance_matrix(items, distance)
    clusters: dict[int, list[int]] = {index: [index] for index in range(n)}
    next_id = n

    def cluster_distance(first: list[int], second: list[int]) -> float:
        distances = [matrix[i][j] for i in first for j in second]
        if linkage == "single":
            return min(distances)
        if linkage == "complete":
            return max(distances)
        return sum(distances) / len(distances)

    target = num_clusters if num_clusters is not None else 1
    while len(clusters) > target:
        ids = sorted(clusters)
        best_pair = None
        best_distance = None
        for position, first_id in enumerate(ids):
            for second_id in ids[position + 1 :]:
                d = cluster_distance(clusters[first_id], clusters[second_id])
                if best_distance is None or d < best_distance:
                    best_distance = d
                    best_pair = (first_id, second_id)
        if best_pair is None:
            break
        if (
            distance_threshold is not None
            and best_distance is not None
            and best_distance > distance_threshold
        ):
            break
        first_id, second_id = best_pair
        merged = clusters.pop(first_id) + clusters.pop(second_id)
        clusters[next_id] = merged
        next_id += 1

    labels = [0] * n
    medoids: dict[int, int] = {}
    for label, (cluster_id, members) in enumerate(sorted(clusters.items())):
        for index in members:
            labels[index] = label
        medoids[label] = min(
            members, key=lambda candidate: sum(matrix[candidate][m] for m in members)
        )
    return ClusteringResult(items=items, labels=labels, medoids=medoids)


def silhouette_score(result: ClusteringResult, distance: Distance) -> float:
    """Mean silhouette coefficient of a clustering, in [-1, 1].

    Used by the mining experiments (C6) to show that feature-based clustering
    recovers the workload's seeded information goals.
    """
    items = result.items
    labels = result.labels
    n = len(items)
    if n == 0 or result.num_clusters <= 1 or result.num_clusters >= n:
        return 0.0
    matrix = _distance_matrix(items, distance)
    clusters = result.clusters()
    total = 0.0
    counted = 0
    for index in range(n):
        own = clusters[labels[index]]
        if len(own) <= 1:
            continue
        a = sum(matrix[index][other] for other in own if other != index) / (len(own) - 1)
        b = min(
            sum(matrix[index][other] for other in members) / len(members)
            for label, members in clusters.items()
            if label != labels[index]
        )
        denominator = max(a, b)
        if denominator > 0:
            total += (b - a) / denominator
            counted += 1
    return total / counted if counted else 0.0
