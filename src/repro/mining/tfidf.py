"""A small TF-IDF vectorizer with cosine similarity.

Used by the Query Miner to vectorize query token bags (feature tokens or raw
SQL tokens) so that kNN search and clustering can work in a vector space in
addition to the set-based similarities.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable


def cosine_similarity(first: dict[str, float], second: dict[str, float]) -> float:
    """Cosine similarity between two sparse vectors (dict term → weight)."""
    if not first or not second:
        return 0.0
    # Iterate over the smaller vector for the dot product.
    if len(first) > len(second):
        first, second = second, first
    dot = sum(weight * second.get(term, 0.0) for term, weight in first.items())
    norm_first = math.sqrt(sum(weight * weight for weight in first.values()))
    norm_second = math.sqrt(sum(weight * weight for weight in second.values()))
    if norm_first == 0.0 or norm_second == 0.0:
        return 0.0
    return dot / (norm_first * norm_second)


class TfIdfVectorizer:
    """Fit on a corpus of token bags; transform bags to sparse TF-IDF vectors.

    Terms never seen during :meth:`fit` receive the maximum IDF (they are
    maximally surprising), which keeps incremental use simple: the CQMS refits
    periodically in the background (the Query Miner runs "periodically",
    Section 3) and tolerates new terms in between.
    """

    def __init__(self, smooth: bool = True):
        self._smooth = smooth
        self._document_frequency: Counter[str] = Counter()
        self._num_documents = 0

    @property
    def num_documents(self) -> int:
        return self._num_documents

    @property
    def vocabulary_size(self) -> int:
        return len(self._document_frequency)

    def fit(self, documents: Iterable[Iterable[str]]) -> "TfIdfVectorizer":
        """Learn document frequencies from an iterable of token bags."""
        self._document_frequency.clear()
        self._num_documents = 0
        for document in documents:
            self._num_documents += 1
            for term in set(document):
                self._document_frequency[term] += 1
        return self

    def partial_fit(self, document: Iterable[str]) -> None:
        """Incrementally add one document to the frequency statistics."""
        self._num_documents += 1
        for term in set(document):
            self._document_frequency[term] += 1

    def idf(self, term: str) -> float:
        """Inverse document frequency of a term."""
        frequency = self._document_frequency.get(term, 0)
        if self._smooth:
            return math.log((1 + self._num_documents) / (1 + frequency)) + 1.0
        if frequency == 0:
            return math.log(max(self._num_documents, 1)) + 1.0
        return math.log(self._num_documents / frequency) + 1.0

    def transform(self, document: Iterable[str]) -> dict[str, float]:
        """Map a token bag to a sparse TF-IDF vector (L2-normalized)."""
        counts = Counter(document)
        if not counts:
            return {}
        vector = {term: count * self.idf(term) for term, count in counts.items()}
        norm = math.sqrt(sum(weight * weight for weight in vector.values()))
        if norm == 0.0:
            return vector
        return {term: weight / norm for term, weight in vector.items()}

    def fit_transform(self, documents: list[Iterable[str]]) -> list[dict[str, float]]:
        """Fit on ``documents`` and return their vectors."""
        materialized = [list(document) for document in documents]
        self.fit(materialized)
        return [self.transform(document) for document in materialized]

    def similarity(self, first: Iterable[str], second: Iterable[str]) -> float:
        """Cosine similarity between two token bags under the fitted model."""
        return cosine_similarity(self.transform(first), self.transform(second))
