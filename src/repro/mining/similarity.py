"""Similarity and distance measures.

The paper lists several candidate notions of query similarity (Sections 2.3,
4.2, 4.3): string similarity, parse-tree similarity (possibly after removing
constants), feature similarity, and output-data similarity.  The functions
here are the generic building blocks; :mod:`repro.core.ranking` combines them
into the ranking functions used for recommendations.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def jaccard_similarity(first: Iterable, second: Iterable) -> float:
    """Jaccard similarity of two sets (1.0 when both are empty)."""
    a, b = set(first), set(second)
    if not a and not b:
        return 1.0
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


def overlap_coefficient(first: Iterable, second: Iterable) -> float:
    """Szymkiewicz–Simpson overlap coefficient: |A ∩ B| / min(|A|, |B|)."""
    a, b = set(first), set(second)
    if not a or not b:
        return 1.0 if not a and not b else 0.0
    return len(a & b) / min(len(a), len(b))


def dice_similarity(first: Iterable, second: Iterable) -> float:
    """Sørensen–Dice coefficient of two sets."""
    a, b = set(first), set(second)
    if not a and not b:
        return 1.0
    return 2 * len(a & b) / (len(a) + len(b))


def weighted_feature_similarity(
    first: dict[str, Iterable],
    second: dict[str, Iterable],
    weights: dict[str, float] | None = None,
) -> float:
    """Weighted average of per-feature-class Jaccard similarities.

    ``first`` and ``second`` map a feature-class name (``tables``,
    ``predicates``, ...) to the set of features of that class.  Classes missing
    from both sides are skipped; missing weights default to 1.0.
    """
    weights = weights or {}
    total_weight = 0.0
    score = 0.0
    for key in set(first) | set(second):
        a = set(first.get(key, ()))
        b = set(second.get(key, ()))
        if not a and not b:
            continue
        weight = float(weights.get(key, 1.0))
        if weight <= 0.0:
            continue
        total_weight += weight
        score += weight * jaccard_similarity(a, b)
    if total_weight == 0.0:
        return 1.0
    return score / total_weight


def edit_distance(first: Sequence, second: Sequence, max_distance: int | None = None) -> int:
    """Levenshtein distance between two sequences (strings or token lists).

    ``max_distance`` enables early exit: once every value in a row exceeds the
    bound the function returns ``max_distance + 1``.
    """
    if first == second:
        return 0
    if not first:
        return len(second)
    if not second:
        return len(first)
    previous = list(range(len(second) + 1))
    for i, item in enumerate(first, start=1):
        current = [i] + [0] * len(second)
        best = current[0]
        for j, other in enumerate(second, start=1):
            cost = 0 if item == other else 1
            current[j] = min(
                previous[j] + 1,      # deletion
                current[j - 1] + 1,   # insertion
                previous[j - 1] + cost,  # substitution
            )
            best = min(best, current[j])
        if max_distance is not None and best > max_distance:
            return max_distance + 1
        previous = current
    return previous[-1]


def normalized_edit_similarity(first: Sequence, second: Sequence) -> float:
    """1 - edit_distance / max(len) in [0, 1]."""
    longest = max(len(first), len(second))
    if longest == 0:
        return 1.0
    return 1.0 - edit_distance(first, second) / longest


def _trigrams(text: str) -> set[str]:
    padded = f"  {text.lower()} "
    return {padded[i : i + 3] for i in range(len(padded) - 2)}


def text_trigram_similarity(first: str, second: str) -> float:
    """Jaccard similarity of character trigrams — a cheap string similarity.

    This is the "string similarity" baseline the paper says a CQMS "needs to
    go beyond" (Section 4.3); it is still useful for name spell-correction.
    """
    return jaccard_similarity(_trigrams(first), _trigrams(second))


def best_match(
    candidate: str, options: Iterable[str], minimum: float = 0.0
) -> tuple[str | None, float]:
    """Most trigram-similar option to ``candidate`` above ``minimum``."""
    best_option: str | None = None
    best_score = minimum
    for option in options:
        score = text_trigram_similarity(candidate, option)
        if score > best_score:
            best_option, best_score = option, score
    return best_option, (best_score if best_option is not None else 0.0)


def rank_by_similarity(
    target,
    candidates: Iterable,
    similarity,
    limit: int | None = None,
) -> list[tuple[object, float]]:
    """Rank ``candidates`` by ``similarity(target, candidate)``, descending."""
    scored = [(candidate, float(similarity(target, candidate))) for candidate in candidates]
    scored.sort(key=lambda pair: -pair[1])
    if limit is not None:
        return scored[:limit]
    return scored
