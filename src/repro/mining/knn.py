"""k-nearest-neighbour search.

The Meta-Query Executor must answer kNN meta-queries ("show me the k logged
queries most similar to what I am typing") interactively (paper Sections 3 and
4.2).  The index below supports:

* brute-force search under an arbitrary similarity function, and
* an inverted-index accelerated search for sparse vectors / token bags, which
  only scores candidates sharing at least one token with the probe — the same
  trick real recommendation systems use and the reason feature-based models
  are cheaper than black-box ones (paper Section 4.1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, TypeVar

Key = TypeVar("Key", bound=Hashable)


@dataclass(frozen=True)
class Neighbor(Generic[Key]):
    """One kNN result: the item key and its similarity to the probe."""

    key: Key
    similarity: float


class KNNIndex(Generic[Key]):
    """An index over items described by token bags.

    Items are added with :meth:`add`; :meth:`nearest` returns the ``k`` most
    similar items to a probe bag.  The default similarity is the Jaccard
    similarity of the token sets; a custom similarity over token *lists* can
    be supplied (e.g. TF-IDF cosine via :class:`~repro.mining.tfidf.TfIdfVectorizer`).
    """

    def __init__(self, similarity: Callable[[list[str], list[str]], float] | None = None):
        self._tokens: dict[Key, list[str]] = {}
        self._inverted: dict[str, set[Key]] = defaultdict(set)
        self._similarity = similarity

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, key: Key) -> bool:
        return key in self._tokens

    def add(self, key: Key, tokens: list[str]) -> None:
        """Add or replace an item."""
        if key in self._tokens:
            self.remove(key)
        self._tokens[key] = list(tokens)
        for token in set(tokens):
            self._inverted[token].add(key)

    def remove(self, key: Key) -> None:
        tokens = self._tokens.pop(key, None)
        if tokens is None:
            return
        for token in set(tokens):
            bucket = self._inverted.get(token)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._inverted[token]

    def candidates(self, tokens: list[str]) -> set[Key]:
        """Keys sharing at least one token with the probe."""
        result: set[Key] = set()
        for token in set(tokens):
            result |= self._inverted.get(token, set())
        return result

    def nearest(
        self,
        tokens: list[str],
        k: int = 10,
        exclude: set[Key] | None = None,
        candidates_only: bool = True,
        min_similarity: float = 0.0,
    ) -> list[Neighbor[Key]]:
        """The ``k`` items most similar to the probe bag.

        ``candidates_only=True`` restricts scoring to items sharing a token
        with the probe (fast path); setting it to False scores everything,
        which is only needed for similarities that can be non-zero without
        token overlap.
        """
        exclude = exclude or set()
        pool = self.candidates(tokens) if candidates_only else set(self._tokens)
        scored: list[Neighbor[Key]] = []
        for key in pool:
            if key in exclude:
                continue
            score = self._score(tokens, self._tokens[key])
            if score > min_similarity:
                scored.append(Neighbor(key=key, similarity=score))
        scored.sort(key=lambda neighbor: (-neighbor.similarity, str(neighbor.key)))
        return scored[:k]

    def _score(self, probe: list[str], item: list[str]) -> float:
        if self._similarity is not None:
            return float(self._similarity(probe, item))
        a, b = set(probe), set(item)
        if not a and not b:
            return 1.0
        union = a | b
        if not union:
            return 1.0
        return len(a & b) / len(union)
